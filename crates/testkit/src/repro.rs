//! Replayable reproducer files (`.ron`-style) for diverging cases.
//!
//! A reproducer is a single self-contained text file holding a
//! [`FuzzCase`]: overlay parameters, the network profile of the lossy
//! companion run, and the full (usually shrunk) op script.  Floats are
//! printed with Rust's shortest round-trip representation, so parsing a
//! reproducer yields a bit-identical case.  Files live under
//! `tests/reproducers/`; CI replays every one and fails while any of
//! them still diverges.
//!
//! ```text
//! // voronet-testkit reproducer v1
//! // divergence: [result:frozen] at op 18: …
//! (
//!     seed: 2027,
//!     nmax: 400,
//!     threads: 4,
//!     round: 64,
//!     network: Lossy(seed: 9, loss: 0.1, lat: (1, 9), shift: None, partition: Some((60, 120, 2))),
//!     script: [
//!         insert(0.5, 0.25),
//!         route(0, 1),
//!         range(2, 0.1, 0.2, 0.3, 0.4),
//!         radius(1, 0.5, 0.5, 0.2),
//!         remove(3),
//!         snapshot(0),
//!     ],
//! )
//! ```

use crate::grammar::{FuzzCase, NetProfile};
use crate::harness::Divergence;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use voronet_geom::{Point2, Rect};
use voronet_workloads::{RadiusQuery, RangeQuery, WorkloadOp};

/// A syntax error while parsing a reproducer file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReproError {
    /// What went wrong, with enough token context to locate it.
    pub message: String,
}

impl std::fmt::Display for ReproError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "reproducer parse error: {}", self.message)
    }
}

impl std::error::Error for ReproError {}

pub(crate) fn perr(message: impl Into<String>) -> ReproError {
    ReproError {
        message: message.into(),
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

pub(crate) fn encode_op(op: &WorkloadOp) -> String {
    match *op {
        WorkloadOp::Insert { position } => format!("insert({}, {})", position.x, position.y),
        WorkloadOp::Remove { index } => format!("remove({index})"),
        WorkloadOp::Route { from, to } => format!("route({from}, {to})"),
        WorkloadOp::Range { from, query } => format!(
            "range({from}, {}, {}, {}, {})",
            query.rect.min.x, query.rect.min.y, query.rect.max.x, query.rect.max.y
        ),
        WorkloadOp::Radius { from, query } => format!(
            "radius({from}, {}, {}, {})",
            query.center.x, query.center.y, query.radius
        ),
        WorkloadOp::Snapshot { index } => format!("snapshot({index})"),
        WorkloadOp::Subscribe { index, region } => format!(
            "subscribe({index}, {}, {}, {}, {})",
            region.min.x, region.min.y, region.max.x, region.max.y
        ),
        WorkloadOp::Unsubscribe { index } => format!("unsubscribe({index})"),
        WorkloadOp::Publish {
            from,
            region,
            payload,
        } => format!(
            "publish({from}, {}, {}, {}, {}, {payload})",
            region.min.x, region.min.y, region.max.x, region.max.y
        ),
        WorkloadOp::KvPut { from, key, value } => format!("kv_put({from}, {key}, {value})"),
        WorkloadOp::KvGet { from, key } => format!("kv_get({from}, {key})"),
        WorkloadOp::KvDelete { from, key } => format!("kv_delete({from}, {key})"),
    }
}

fn encode_net(net: &NetProfile) -> String {
    match *net {
        NetProfile::Ideal => "Ideal".to_string(),
        NetProfile::Lossy {
            seed,
            loss,
            lat_min,
            lat_max,
            shift,
            partition,
        } => {
            let opt = |v: Option<(u64, u64, u64)>| match v {
                None => "None".to_string(),
                Some((a, b, c)) => format!("Some(({a}, {b}, {c}))"),
            };
            format!(
                "Lossy(seed: {seed}, loss: {loss}, lat: ({lat_min}, {lat_max}), \
                 shift: {}, partition: {})",
                opt(shift),
                opt(partition)
            )
        }
    }
}

/// Serializes a case (optionally annotating the divergence it triggers).
pub fn encode_case(case: &FuzzCase, divergence: Option<&Divergence>) -> String {
    let mut out = String::new();
    out.push_str("// voronet-testkit reproducer v1\n");
    if let Some(d) = divergence {
        for line in d.to_string().lines() {
            let _ = writeln!(out, "// divergence: {line}");
        }
    }
    let _ = writeln!(out, "(");
    let _ = writeln!(out, "    seed: {},", case.seed);
    let _ = writeln!(out, "    nmax: {},", case.nmax);
    let _ = writeln!(out, "    threads: {},", case.threads);
    let _ = writeln!(out, "    round: {},", case.round);
    let _ = writeln!(out, "    network: {},", encode_net(&case.net));
    let _ = writeln!(out, "    script: [");
    for op in &case.script {
        let _ = writeln!(out, "        {},", encode_op(op));
    }
    let _ = writeln!(out, "    ],");
    out.push_str(")\n");
    out
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Token {
    Ident(String),
    Num(String),
    Punct(char),
}

impl std::fmt::Display for Token {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Num(s) => write!(f, "{s}"),
            Token::Punct(c) => write!(f, "{c}"),
        }
    }
}

pub(crate) fn tokenize(text: &str) -> Result<Vec<Token>, ReproError> {
    let mut tokens = Vec::new();
    let mut chars = text.char_indices().peekable();
    while let Some(&(i, c)) = chars.peek() {
        match c {
            '/' => {
                // `//` line comment.
                let rest = &text[i..];
                if rest.starts_with("//") {
                    while let Some(&(_, c)) = chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        chars.next();
                    }
                } else {
                    return Err(perr(format!("stray '/' at byte {i}")));
                }
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' | ')' | '[' | ']' | ':' | ',' => {
                tokens.push(Token::Punct(c));
                chars.next();
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(s));
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' || c == '.' => {
                let mut s = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    // Accepts integers, decimals and scientific notation.
                    if c.is_ascii_digit()
                        || c == '.'
                        || c == '-'
                        || c == '+'
                        || c == 'e'
                        || c == 'E'
                    {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Num(s));
            }
            other => return Err(perr(format!("unexpected character {other:?} at byte {i}"))),
        }
    }
    Ok(tokens)
}

pub(crate) struct Parser {
    pub(crate) tokens: Vec<Token>,
    pub(crate) pos: usize,
}

impl Parser {
    pub(crate) fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    pub(crate) fn next(&mut self) -> Result<Token, ReproError> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| perr("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    pub(crate) fn punct(&mut self, want: char) -> Result<(), ReproError> {
        match self.next()? {
            Token::Punct(c) if c == want => Ok(()),
            other => Err(perr(format!("expected {want:?}, found {other}"))),
        }
    }

    pub(crate) fn ident(&mut self) -> Result<String, ReproError> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(perr(format!("expected identifier, found {other}"))),
        }
    }

    pub(crate) fn key(&mut self, want: &str) -> Result<(), ReproError> {
        let got = self.ident()?;
        if got != want {
            return Err(perr(format!("expected field {want:?}, found {got:?}")));
        }
        self.punct(':')
    }

    pub(crate) fn u64(&mut self) -> Result<u64, ReproError> {
        match self.next()? {
            Token::Num(s) => s
                .parse()
                .map_err(|e| perr(format!("bad integer {s:?}: {e}"))),
            other => Err(perr(format!("expected integer, found {other}"))),
        }
    }

    pub(crate) fn usize(&mut self) -> Result<usize, ReproError> {
        Ok(self.u64()? as usize)
    }

    pub(crate) fn f64(&mut self) -> Result<f64, ReproError> {
        match self.next()? {
            Token::Num(s) => s.parse().map_err(|e| perr(format!("bad float {s:?}: {e}"))),
            other => Err(perr(format!("expected float, found {other}"))),
        }
    }

    fn triple(&mut self) -> Result<(u64, u64, u64), ReproError> {
        self.punct('(')?;
        let a = self.u64()?;
        self.punct(',')?;
        let b = self.u64()?;
        self.punct(',')?;
        let c = self.u64()?;
        self.punct(')')?;
        Ok((a, b, c))
    }

    fn opt_triple(&mut self) -> Result<Option<(u64, u64, u64)>, ReproError> {
        match self.ident()?.as_str() {
            "None" => Ok(None),
            "Some" => {
                self.punct('(')?;
                let t = self.triple()?;
                self.punct(')')?;
                Ok(Some(t))
            }
            other => Err(perr(format!("expected None or Some, found {other:?}"))),
        }
    }

    fn net(&mut self) -> Result<NetProfile, ReproError> {
        match self.ident()?.as_str() {
            "Ideal" => Ok(NetProfile::Ideal),
            "Lossy" => {
                self.punct('(')?;
                self.key("seed")?;
                let seed = self.u64()?;
                self.punct(',')?;
                self.key("loss")?;
                let loss = self.f64()?;
                self.punct(',')?;
                self.key("lat")?;
                self.punct('(')?;
                let lat_min = self.u64()?;
                self.punct(',')?;
                let lat_max = self.u64()?;
                self.punct(')')?;
                self.punct(',')?;
                self.key("shift")?;
                let shift = self.opt_triple()?;
                self.punct(',')?;
                self.key("partition")?;
                let partition = self.opt_triple()?;
                self.punct(')')?;
                Ok(NetProfile::Lossy {
                    seed,
                    loss,
                    lat_min,
                    lat_max,
                    shift,
                    partition,
                })
            }
            other => Err(perr(format!("unknown network profile {other:?}"))),
        }
    }

    /// Four comma-separated floats `ax, ay, bx, by` forming a rectangle.
    fn rect(&mut self) -> Result<Rect, ReproError> {
        let ax = self.f64()?;
        self.punct(',')?;
        let ay = self.f64()?;
        self.punct(',')?;
        let bx = self.f64()?;
        self.punct(',')?;
        let by = self.f64()?;
        Ok(Rect::new(Point2::new(ax, ay), Point2::new(bx, by)))
    }

    pub(crate) fn op(&mut self) -> Result<WorkloadOp, ReproError> {
        let verb = self.ident()?;
        self.punct('(')?;
        let op = match verb.as_str() {
            "insert" => {
                let x = self.f64()?;
                self.punct(',')?;
                let y = self.f64()?;
                WorkloadOp::Insert {
                    position: Point2::new(x, y),
                }
            }
            "remove" => WorkloadOp::Remove {
                index: self.usize()?,
            },
            "route" => {
                let from = self.usize()?;
                self.punct(',')?;
                let to = self.usize()?;
                WorkloadOp::Route { from, to }
            }
            "range" => {
                let from = self.usize()?;
                self.punct(',')?;
                let ax = self.f64()?;
                self.punct(',')?;
                let ay = self.f64()?;
                self.punct(',')?;
                let bx = self.f64()?;
                self.punct(',')?;
                let by = self.f64()?;
                WorkloadOp::Range {
                    from,
                    query: RangeQuery {
                        rect: Rect::new(Point2::new(ax, ay), Point2::new(bx, by)),
                    },
                }
            }
            "radius" => {
                let from = self.usize()?;
                self.punct(',')?;
                let cx = self.f64()?;
                self.punct(',')?;
                let cy = self.f64()?;
                self.punct(',')?;
                let r = self.f64()?;
                WorkloadOp::Radius {
                    from,
                    query: RadiusQuery {
                        center: Point2::new(cx, cy),
                        radius: r,
                    },
                }
            }
            "snapshot" => WorkloadOp::Snapshot {
                index: self.usize()?,
            },
            "subscribe" => {
                let index = self.usize()?;
                self.punct(',')?;
                let region = self.rect()?;
                WorkloadOp::Subscribe { index, region }
            }
            "unsubscribe" => WorkloadOp::Unsubscribe {
                index: self.usize()?,
            },
            "publish" => {
                let from = self.usize()?;
                self.punct(',')?;
                let region = self.rect()?;
                self.punct(',')?;
                let payload = self.u64()?;
                WorkloadOp::Publish {
                    from,
                    region,
                    payload,
                }
            }
            "kv_put" => {
                let from = self.usize()?;
                self.punct(',')?;
                let key = self.u64()?;
                self.punct(',')?;
                let value = self.u64()?;
                WorkloadOp::KvPut { from, key, value }
            }
            "kv_get" => {
                let from = self.usize()?;
                self.punct(',')?;
                let key = self.u64()?;
                WorkloadOp::KvGet { from, key }
            }
            "kv_delete" => {
                let from = self.usize()?;
                self.punct(',')?;
                let key = self.u64()?;
                WorkloadOp::KvDelete { from, key }
            }
            other => return Err(perr(format!("unknown script op {other:?}"))),
        };
        self.punct(')')?;
        Ok(op)
    }
}

/// Parses a reproducer back into the case it encodes.
pub fn parse_case(text: &str) -> Result<FuzzCase, ReproError> {
    let mut p = Parser {
        tokens: tokenize(text)?,
        pos: 0,
    };
    p.punct('(')?;
    p.key("seed")?;
    let seed = p.u64()?;
    p.punct(',')?;
    p.key("nmax")?;
    let nmax = p.usize()?;
    p.punct(',')?;
    p.key("threads")?;
    let threads = p.usize()?;
    p.punct(',')?;
    p.key("round")?;
    let round = p.usize()?;
    p.punct(',')?;
    p.key("network")?;
    let net = p.net()?;
    p.punct(',')?;
    p.key("script")?;
    p.punct('[')?;
    let mut script = Vec::new();
    loop {
        match p.peek() {
            Some(Token::Punct(']')) => {
                p.next()?;
                break;
            }
            Some(_) => {
                script.push(p.op()?);
                // Trailing comma is optional before `]`.
                if let Some(Token::Punct(',')) = p.peek() {
                    p.next()?;
                }
            }
            None => return Err(perr("unterminated script list")),
        }
    }
    p.punct(',')?;
    p.punct(')')?;
    if p.peek().is_some() {
        return Err(perr(format!(
            "trailing tokens after case: {}",
            p.next().expect("peeked")
        )));
    }
    Ok(FuzzCase {
        seed,
        nmax,
        threads,
        round,
        net,
        script,
    })
}

/// Writes a reproducer under `dir` (created if missing) and returns its
/// path.  File names encode the seed and shrunk length; when that name is
/// already taken (two divergences from the same seed shrinking to the
/// same length), a numeric suffix is appended so an existing witness is
/// never overwritten.
pub fn write_reproducer(
    dir: &Path,
    case: &FuzzCase,
    divergence: Option<&Divergence>,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let stem = format!("repro-seed{}-{}ops", case.seed, case.script.len());
    let mut path = dir.join(format!("{stem}.ron"));
    let mut n = 1usize;
    while path.exists() {
        n += 1;
        path = dir.join(format!("{stem}-{n}.ron"));
    }
    std::fs::write(&path, encode_case(case, divergence))?;
    Ok(path)
}

/// Reads a reproducer file.
pub fn read_reproducer(path: &Path) -> Result<FuzzCase, ReproError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| perr(format!("cannot read {}: {e}", path.display())))?;
    parse_case(&text)
}

/// All reproducer files (`*.ron`) under `dir`, sorted by name; an absent
/// directory holds none.
pub fn list_reproducers(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "ron"))
        .collect();
    files.sort();
    files
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::{generate_case, FuzzSpec};

    #[test]
    fn cases_round_trip_bit_exactly() {
        for seed in [1u64, 2, 3] {
            let case = generate_case(&FuzzSpec::smoke(seed));
            let text = encode_case(&case, None);
            let parsed = parse_case(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(parsed, case, "seed {seed}");
            // Idempotent re-encoding.
            assert_eq!(encode_case(&parsed, None), text, "seed {seed}");
        }
    }

    #[test]
    fn divergence_annotations_parse_as_comments() {
        let case = generate_case(&FuzzSpec {
            warmup: 4,
            ops: 8,
            ..FuzzSpec::smoke(9)
        });
        let d = Divergence {
            op_index: Some(3),
            kind: "result:frozen".to_string(),
            detail: "hops diverge".to_string(),
        };
        let text = encode_case(&case, Some(&d));
        assert!(text.contains("// divergence"));
        assert_eq!(parse_case(&text).unwrap(), case);
    }

    #[test]
    fn files_round_trip_through_the_filesystem() {
        let dir = std::env::temp_dir().join(format!("voronet-testkit-{}", std::process::id()));
        let case = generate_case(&FuzzSpec {
            warmup: 4,
            ops: 12,
            ..FuzzSpec::smoke(5)
        });
        let path = write_reproducer(&dir, &case, None).unwrap();
        assert!(list_reproducers(&dir).contains(&path));
        assert_eq!(read_reproducer(&path).unwrap(), case);
        // A second find with the same seed and length must not clobber
        // the first witness.
        let second = write_reproducer(&dir, &case, None).unwrap();
        assert_ne!(second, path, "colliding names must be disambiguated");
        assert_eq!(list_reproducers(&dir).len(), 2);
        assert_eq!(read_reproducer(&second).unwrap(), case);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_errors_are_descriptive() {
        assert!(parse_case("(seed: x)")
            .unwrap_err()
            .message
            .contains("expected integer"));
        assert!(parse_case("").unwrap_err().message.contains("end of input"));
        let case = generate_case(&FuzzSpec {
            warmup: 2,
            ops: 4,
            ..FuzzSpec::smoke(1)
        });
        let bad = encode_case(&case, None).replace("insert", "teleport");
        assert!(parse_case(&bad)
            .unwrap_err()
            .message
            .contains("unknown script op"));
    }
}
