//! Property fuzzing of the wire codec (`voronet-net`).
//!
//! Three properties, run from unit tests here and from the fuzz binary's
//! `--codec` pass (the CI `net-smoke` budget):
//!
//! 1. **Round-trip** — every randomly generated frame decodes, and
//!    re-encoding the decoded message reproduces the identical bytes
//!    (the codec is canonical: one message, one byte string).
//! 2. **Truncation totality** — every strict prefix of a valid frame
//!    decodes to a typed [`DecodeError`](voronet_net::DecodeError),
//!    never a panic and never a bogus success.
//! 3. **Corruption totality** — byte-flipped frames and arbitrary byte
//!    soup either decode to some valid message (which must then
//!    round-trip canonically itself) or fail with a typed error; the
//!    decoder never panics and never reads out of bounds.
//!
//! Failures shrink through [`check_cases`](crate::prop::check_cases)'s
//! byte-vector shrinking, so a reported counterexample is a
//! near-minimal frame.

use rand::rngs::StdRng;
use rand::RngExt;
use voronet_geom::{Point2, Rect};
use voronet_net::frame::HEADER_LEN;
use voronet_net::wire::{EntryList, IdList, PointList, WireMsg, WirePurpose, WireQuery};
use voronet_sim::TransportStats;

fn point(rng: &mut StdRng) -> Point2 {
    // Mix well-behaved coordinates with adversarial bit patterns.
    match rng.random_range(0..4u32) {
        0 => Point2::new(f64::from_bits(rng.random()), f64::from_bits(rng.random())),
        _ => Point2::new(rng.random(), rng.random()),
    }
}

fn rect(rng: &mut StdRng) -> Rect {
    Rect::new(point(rng), point(rng))
}

fn purpose(rng: &mut StdRng) -> WirePurpose {
    match rng.random_range(0..4u32) {
        0 => WirePurpose::Join {
            position: point(rng),
            token: rng.random(),
        },
        1 => WirePurpose::Query {
            token: rng.random(),
        },
        2 => WirePurpose::Area {
            rect: rect(rng),
            token: rng.random(),
        },
        _ => WirePurpose::Radius {
            center: point(rng),
            radius: rng.random(),
            token: rng.random(),
        },
    }
}

fn ids(rng: &mut StdRng, max: usize) -> Vec<u64> {
    (0..rng.random_range(0..max))
        .map(|_| rng.random())
        .collect()
}

fn stats(rng: &mut StdRng) -> TransportStats {
    let mut s = TransportStats::new();
    s.frames_sent = rng.random();
    s.frames_delivered = rng.random();
    s.dropped_loss = rng.random();
    s.dropped_partition = rng.random();
    s.dead_letters = rng.random();
    s.oversized = rng.random();
    s.decode_errors = rng.random();
    s.reconnects = rng.random();
    s
}

/// Encodes one random message (random variant, random field content,
/// adversarial floats included) into a complete frame.
pub fn random_frame(rng: &mut StdRng) -> Vec<u8> {
    let from: u64 = rng.random();
    let to: u64 = rng.random();
    let mut buf = Vec::new();
    let mut s1 = Vec::new();
    let mut s2 = Vec::new();
    let mut s3 = Vec::new();
    let msg = match rng.random_range(0..32u32) {
        0 => WireMsg::Hello,
        1 => WireMsg::Join {
            position: point(rng),
            token: rng.random(),
        },
        2 => WireMsg::RouteStep {
            target: point(rng),
            origin: rng.random(),
            hops: rng.random(),
            purpose: purpose(rng),
        },
        3 => WireMsg::NeighborUpdate,
        4 => WireMsg::Leave,
        5 => WireMsg::Ping {
            reply: rng.random(),
        },
        6 => WireMsg::Answer {
            hops: rng.random(),
            token: rng.random(),
        },
        7 => {
            let entries: Vec<(u64, Point2)> = (0..rng.random_range(0..24usize))
                .map(|_| (rng.random(), point(rng)))
                .collect();
            let cell: Vec<Point2> = (0..rng.random_range(0..16usize))
                .map(|_| point(rng))
                .collect();
            let vn = ids(rng, 24);
            WireMsg::ViewUpdate {
                object: rng.random(),
                seq: rng.random(),
                coords: point(rng),
                routing: EntryList::build(&mut s1, &entries),
                vn: IdList::build(&mut s2, &vn),
                cell: PointList::build(&mut s3, &cell),
            }
        }
        8 => WireMsg::ViewAck {
            object: rng.random(),
            seq: rng.random(),
        },
        9 => WireMsg::Evict {
            object: rng.random(),
            seq: rng.random(),
        },
        10 => WireMsg::EvictAck {
            object: rng.random(),
            seq: rng.random(),
        },
        11 => WireMsg::RouteReq {
            token: rng.random(),
            from_object: rng.random(),
            target: point(rng),
        },
        12 => WireMsg::AreaReq {
            token: rng.random(),
            from_object: rng.random(),
            rect: rect(rng),
        },
        13 => WireMsg::RadiusReq {
            token: rng.random(),
            from_object: rng.random(),
            center: point(rng),
            radius: rng.random(),
        },
        14 => WireMsg::AnswerOwner {
            token: rng.random(),
            owner: rng.random(),
            hops: rng.random(),
        },
        15 => {
            let matches = ids(rng, 256);
            WireMsg::AnswerMatches {
                token: rng.random(),
                hops: rng.random(),
                visited: rng.random(),
                matches: IdList::build(&mut s1, &matches),
            }
        }
        16 => WireMsg::FloodProbe {
            token: rng.random(),
            object: rng.random(),
            query: if rng.random() {
                WireQuery::Rect(rect(rng))
            } else {
                WireQuery::Disk {
                    center: point(rng),
                    radius: rng.random(),
                }
            },
        },
        17 => {
            let neighbours = ids(rng, 24);
            WireMsg::FloodReply {
                token: rng.random(),
                object: rng.random(),
                eligible: rng.random(),
                is_match: rng.random(),
                neighbours: IdList::build(&mut s1, &neighbours),
            }
        }
        18 => WireMsg::StatsReq,
        19 => WireMsg::StatsReply {
            stats: stats(rng),
            ops_served: rng.random(),
        },
        20 => WireMsg::Shutdown,
        21 => WireMsg::SvcSubscribe {
            object: rng.random(),
            seq: rng.random(),
            region: rect(rng),
        },
        22 => WireMsg::SvcUnsubscribe {
            object: rng.random(),
            seq: rng.random(),
        },
        23 => WireMsg::SvcDeliver {
            object: rng.random(),
            seq: rng.random(),
            topic: [rng.random(), rng.random(), rng.random(), rng.random()],
            topic_seq: rng.random(),
            payload: rng.random(),
        },
        24 => WireMsg::SvcKvStore {
            object: rng.random(),
            seq: rng.random(),
            key: rng.random(),
            value: rng.random(),
        },
        25 => WireMsg::SvcKvDrop {
            object: rng.random(),
            seq: rng.random(),
            key: rng.random(),
        },
        26 => WireMsg::SvcKvFetch {
            token: rng.random(),
            object: rng.random(),
            key: rng.random(),
        },
        27 => WireMsg::SvcKvValue {
            token: rng.random(),
            value: if rng.random() {
                Some(rng.random())
            } else {
                None
            },
        },
        28 => WireMsg::SvcAck {
            object: rng.random(),
            seq: rng.random(),
        },
        29 => WireMsg::SvcKvReplicate {
            object: rng.random(),
            seq: rng.random(),
            key: rng.random(),
            value: rng.random(),
            entry_seq: rng.random(),
        },
        30 => WireMsg::SvcKvFetchReplica {
            token: rng.random(),
            object: rng.random(),
            key: rng.random(),
        },
        _ => WireMsg::SvcKvReplicaValue {
            token: rng.random(),
            entry_seq: rng.random(),
            value: if rng.random() {
                Some(rng.random())
            } else {
                None
            },
        },
    };
    msg.encode(from, to, &mut buf)
        .expect("generated frames fit");
    buf
}

/// Property 1: a valid frame decodes and re-encodes to identical bytes.
pub fn check_roundtrip(frame: &[u8]) -> Result<(), String> {
    let (header, msg) =
        WireMsg::decode(frame).map_err(|e| format!("valid frame failed to decode: {e}"))?;
    let mut again = Vec::new();
    msg.encode(header.from, header.to, &mut again)
        .map_err(|e| format!("decoded message failed to re-encode: {e}"))?;
    crate::tk_ensure_eq!(
        frame,
        &again[..],
        "re-encoding must reproduce the frame bytes"
    );
    Ok(())
}

/// Property 2: every strict prefix of a valid frame is a typed error.
pub fn check_truncations(frame: &[u8]) -> Result<(), String> {
    for cut in 0..frame.len() {
        crate::tk_ensure!(
            WireMsg::decode(&frame[..cut]).is_err(),
            "prefix of length {cut} of a {}-byte frame must not decode",
            frame.len()
        );
    }
    Ok(())
}

/// Property 3: corrupted frames never panic the decoder, and anything
/// that still decodes re-encodes to a canonical *fixpoint*: decoding may
/// normalise adversarial field content (e.g. a rectangle whose corners
/// were flipped out of min/max order), so one re-encode is allowed to
/// differ from the corrupted bytes — but it must then round-trip
/// identically forever after.  `flips` are `(byte index modulo frame
/// length, xor mask)` pairs.
pub fn check_corruption(frame: &[u8], flips: &[(usize, u8)]) -> Result<(), String> {
    let mut bytes = frame.to_vec();
    for &(at, mask) in flips {
        if !bytes.is_empty() {
            let at = at % bytes.len();
            bytes[at] ^= mask;
        }
    }
    match WireMsg::decode(&bytes) {
        Err(_) => Ok(()), // typed rejection is the expected outcome
        Ok((header, msg)) => {
            let mut again = Vec::new();
            msg.encode(header.from, header.to, &mut again)
                .map_err(|e| format!("surviving corruption failed to re-encode: {e}"))?;
            check_roundtrip(&again)
                .map_err(|e| format!("canonicalised corruption is not a fixpoint: {e}"))
        }
    }
}

/// Runs the full codec pass: `cases` seeded cases of each property, with
/// shrinking on failure.  `base_seed` namespaces the pass.
pub fn run_codec_pass(cases: u64, base_seed: u64) {
    crate::prop::check_cases(
        "codec round-trip",
        cases,
        base_seed,
        random_frame,
        |frame| check_roundtrip(frame),
    );
    crate::prop::check_cases(
        "codec truncation totality",
        cases,
        base_seed ^ 0x007A_C0DE,
        random_frame,
        |frame| check_truncations(frame),
    );
    crate::prop::check_cases(
        "codec corruption totality",
        cases,
        base_seed ^ 0x000F_11F5,
        |rng| {
            let frame = random_frame(rng);
            let flips: Vec<(usize, u8)> = (0..rng.random_range(1..8usize))
                .map(|_| (rng.random_range(0..frame.len().max(1)), rng.random()))
                .collect();
            (frame, flips)
        },
        |(frame, flips)| check_corruption(frame, flips),
    );
    crate::prop::check_cases(
        "decoder totality on byte soup",
        cases,
        base_seed ^ 0x50_0B,
        |rng| {
            let len = rng.random_range(0..(HEADER_LEN * 4));
            (0..len).map(|_| rng.random::<u8>()).collect::<Vec<u8>>()
        },
        |bytes| {
            let _ = WireMsg::decode(bytes); // must return, not panic
            Ok(())
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn codec_pass_holds_on_the_unit_test_budget() {
        run_codec_pass(64, 0xC0DEC);
    }

    #[test]
    fn truncation_check_catches_a_decoding_prefix() {
        // A frame followed by itself: the prefix at the first frame's
        // boundary decodes, so the truncation property must flag it.
        let mut rng = StdRng::seed_from_u64(1);
        let frame = random_frame(&mut rng);
        let mut doubled = frame.clone();
        doubled.extend_from_slice(&frame);
        assert!(check_truncations(&doubled).is_err());
    }
}
