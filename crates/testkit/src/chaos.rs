//! Chaos harness: seeded crash/partition fuzzing of the fault-tolerant
//! cluster (`voronet-net`).
//!
//! A [`ChaosCase`] is a single replayable timeline mixing workload ops
//! with [`FaultEvent`]s (crash-stop, restart, partition, heal) plus a
//! link-fault profile, executed against a
//! [`FaultyCluster`] whose every endpoint is wrapped in a seeded
//! [`FaultTransport`](voronet_net::FaultTransport) — the same seed
//! replays the same faults bit-for-bit.  [`run_chaos`] drives the
//! timeline and audits three safety properties:
//!
//! 1. **No acked write lost** — a KV read never returns a value that
//!    contradicts the model of acknowledged puts/deletes (degraded
//!    replica reads included; an op whose ack was lost moves its key to
//!    "unknown", where any answer is accepted).
//! 2. **No livelock** — every driver op completes (successfully or by
//!    failing fast) within a wall-clock bound; retry budgets must hold
//!    under crashes and partitions.
//! 3. **Ledger consistency** — after healing every fault, all hosts
//!    return to `Alive`, every acked value reads back on the healthy
//!    path, every death was matched by a revival, and the transport
//!    layer saw no decode errors or oversized frames.
//!
//! Failing cases shrink through [`shrink_chaos`] (classic ddmin over the
//! step list) and serialize to `.ron` reproducers under `tests/chaos/`,
//! which CI replays via the fuzz binary's `--chaos` pass.

use crate::repro::{encode_op, perr, tokenize, Parser, ReproError, Token};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use voronet_core::VoroNetConfig;
use voronet_net::{
    ClusterError, FaultEvent, FaultPlan, FaultyCluster, HostState, LinkFaults, Liveness, OpOutcome,
    RetryPolicy,
};
use voronet_workloads::{Distribution, OpBatchGenerator, OpMix, PointGenerator, WorkloadOp};

/// Wall-clock bound on a single driver op under chaos: far above any
/// healthy latency, far below a livelock (tight retry budgets are ~3 s;
/// a flood abandoning probes to a dead host adds ~6 s).
const OP_BOUND: Duration = Duration::from_secs(30);

/// Knobs of chaos-case generation (what [`generate_chaos`] consumes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Master seed: same seed, same timeline, same injected faults.
    pub seed: u64,
    /// Host peers of the cluster.
    pub hosts: u64,
    /// Warm-up inserts opening the timeline.
    pub warmup: usize,
    /// Generated workload ops after the warm-up.
    pub ops: usize,
    /// Provisioned overlay capacity.
    pub nmax: usize,
}

impl ChaosSpec {
    /// The CI-sized chaos budget.
    pub fn smoke(seed: u64) -> Self {
        ChaosSpec {
            seed,
            hosts: 3,
            warmup: 24,
            ops: 110,
            nmax: 400,
        }
    }
}

/// One entry of a chaos timeline: a workload op or a fault transition.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosStep {
    /// A driver operation.
    Op(WorkloadOp),
    /// A fault-switchboard transition.
    Fault(FaultEvent),
}

/// A self-contained, replayable chaos case.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCase {
    /// Seed of the cluster, the endpoint fault RNGs and the generator.
    pub seed: u64,
    /// Host peers.
    pub hosts: u64,
    /// Provisioned overlay capacity.
    pub nmax: usize,
    /// Link faults in force for the whole run.
    pub link: LinkFaults,
    /// The timeline.
    pub steps: Vec<ChaosStep>,
}

/// Generates the chaos case a spec describes (deterministic in
/// `spec.seed`): a warm-up insert burst, then weighted workload segments
/// interleaved with a [`FaultPlan`] schedule of crashes, restarts and
/// partitions; odd seeds add a mildly lossy link profile on top.
pub fn generate_chaos(spec: &ChaosSpec) -> ChaosCase {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xC4A0_5CA5);
    let mut ops: Vec<WorkloadOp> = Vec::with_capacity(spec.warmup + spec.ops);
    let mut points = PointGenerator::new(Distribution::Uniform, spec.seed ^ 0x57A2);
    for _ in 0..spec.warmup {
        ops.push(WorkloadOp::Insert {
            position: points.next_point(),
        });
    }
    let mut pop = spec.warmup.max(1);
    while ops.len() < spec.warmup + spec.ops {
        let remaining = spec.warmup + spec.ops - ops.len();
        let len = rng.random_range(16..=64usize).min(remaining);
        // Chaos leans on the service plane: half the segments are
        // KV-heavy so crash windows overlap live puts and gets.
        let mix = match rng.random_range(0..4u32) {
            0 => OpMix::read_heavy(),
            1 => OpMix::churn_heavy(),
            _ => OpMix::services(15, 60),
        };
        let segment = OpBatchGenerator::new(Distribution::Uniform, rng.random::<u64>(), mix)
            .with_max_query_extent(0.2)
            .batch(pop, len);
        for op in &segment {
            match op {
                WorkloadOp::Insert { .. } => pop += 1,
                WorkloadOp::Remove { .. } => pop = pop.saturating_sub(1).max(1),
                _ => {}
            }
        }
        ops.extend(segment);
    }

    // Interleave the fault schedule: events fire *before* the op at
    // their index (warm-up excluded so the overlay is populated first).
    let plan = FaultPlan::generate(spec.seed, spec.hosts, spec.ops);
    let mut steps = Vec::with_capacity(ops.len() + plan.events.len());
    for (i, op) in ops.into_iter().enumerate() {
        if i >= spec.warmup {
            for &(at, event) in &plan.events {
                if at + spec.warmup == i {
                    steps.push(ChaosStep::Fault(event));
                }
            }
        }
        steps.push(ChaosStep::Op(op));
    }
    for &(at, event) in &plan.events {
        if at >= spec.ops {
            steps.push(ChaosStep::Fault(event));
        }
    }

    ChaosCase {
        seed: spec.seed,
        hosts: spec.hosts,
        nmax: spec.nmax,
        link: if spec.seed % 2 == 1 {
            LinkFaults::lossy(0.04)
        } else {
            LinkFaults::default()
        },
        steps,
    }
}

/// What the model knows about one key after the run so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Known {
    /// The last acked write committed this value.
    Value(u64),
    /// An acked delete (or no write ever) means certainly absent.
    Absent,
    /// An unacked put/delete left the key in an unknown state: any
    /// read answer is accepted.
    Unknown,
}

/// Outcome of a clean chaos run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosReport {
    /// Workload ops executed.
    pub ops_run: usize,
    /// Fault events fired.
    pub faults_fired: usize,
    /// Reads the driver served through replicas.
    pub degraded_reads: u64,
    /// Ops that failed fast on a dead host.
    pub fail_fast: u64,
}

/// A violated chaos property, locating the offending step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosFailure {
    /// Timeline index of the offending step (`None` for end-of-run
    /// audits).
    pub step: Option<usize>,
    /// Which property failed and how.
    pub detail: String,
}

impl std::fmt::Display for ChaosFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.step {
            Some(i) => write!(f, "at step {i}: {}", self.detail),
            None => write!(f, "at end of run: {}", self.detail),
        }
    }
}

fn fail(step: Option<usize>, detail: impl Into<String>) -> ChaosFailure {
    ChaosFailure {
        step,
        detail: detail.into(),
    }
}

/// An op error the fault model allows: the target was unreachable and
/// the driver failed fast (or exhausted its bounded retry budget).
fn acceptable(e: &ClusterError) -> bool {
    matches!(e, ClusterError::Unavailable(_) | ClusterError::Timeout(_))
}

/// Executes a chaos timeline and audits the three safety properties
/// (see the module docs).  `Err` carries the first violation.
pub fn run_chaos(case: &ChaosCase) -> Result<ChaosReport, ChaosFailure> {
    let mut cluster = FaultyCluster::start(
        case.hosts,
        VoroNetConfig::new(case.nmax).with_seed(case.seed),
        case.link,
        case.seed,
    );
    cluster.driver().set_retry_policy(RetryPolicy::tight());
    cluster.driver().set_liveness(Liveness::tight());

    let mut model: HashMap<u64, Known> = HashMap::new();
    let mut ops_run = 0usize;
    let mut faults_fired = 0usize;

    for (i, step) in case.steps.iter().enumerate() {
        let op = match step {
            ChaosStep::Fault(event) => {
                cluster.ctl().apply(*event);
                faults_fired += 1;
                continue;
            }
            ChaosStep::Op(op) => op,
        };
        let driver = cluster.driver();
        let pop = driver.population();
        let at = |index: usize| index % pop.max(1);
        let started = Instant::now();
        let result: Result<(), ChaosFailure> = match *op {
            WorkloadOp::Insert { position } => match driver.insert(position) {
                Ok(_) => Ok(()),
                Err(e) if acceptable(&e) => Ok(()),
                Err(e) => Err(fail(Some(i), format!("insert errored: {e}"))),
            },
            WorkloadOp::Remove { index } if pop > 4 => match driver.remove_index(at(index)) {
                Ok(_) => Ok(()),
                Err(e) if acceptable(&e) => Ok(()),
                Err(e) => Err(fail(Some(i), format!("remove errored: {e}"))),
            },
            WorkloadOp::Remove { .. } => Ok(()), // keep a routable population
            WorkloadOp::Route { from, to } if pop > 0 => {
                match driver.route_indices(at(from), at(to)) {
                    Ok(_) => Ok(()),
                    Err(e) if acceptable(&e) => Ok(()),
                    Err(e) => Err(fail(Some(i), format!("route errored: {e}"))),
                }
            }
            WorkloadOp::Range { from, query } if pop > 0 => {
                match driver.range_query(at(from), query) {
                    Ok(_) => Ok(()),
                    Err(e) if acceptable(&e) => Ok(()),
                    Err(e) => Err(fail(Some(i), format!("range errored: {e}"))),
                }
            }
            WorkloadOp::Radius { from, query } if pop > 0 => {
                match driver.radius_query(at(from), query) {
                    Ok(_) => Ok(()),
                    Err(e) if acceptable(&e) => Ok(()),
                    Err(e) => Err(fail(Some(i), format!("radius errored: {e}"))),
                }
            }
            WorkloadOp::Subscribe { index, region } if pop > 0 => {
                match driver.subscribe(at(index), region) {
                    Ok(_) => Ok(()),
                    Err(e) if acceptable(&e) => Ok(()),
                    Err(e) => Err(fail(Some(i), format!("subscribe errored: {e}"))),
                }
            }
            WorkloadOp::Unsubscribe { index } if pop > 0 => match driver.unsubscribe(at(index)) {
                Ok(_) => Ok(()),
                Err(e) if acceptable(&e) => Ok(()),
                Err(e) => Err(fail(Some(i), format!("unsubscribe errored: {e}"))),
            },
            WorkloadOp::Publish {
                from,
                region,
                payload,
            } if pop > 0 => match driver.publish(at(from), region, payload) {
                Ok(_) => Ok(()),
                Err(e) if acceptable(&e) => Ok(()),
                Err(e) => Err(fail(Some(i), format!("publish errored: {e}"))),
            },
            WorkloadOp::KvPut { from, key, value } if pop > 0 => {
                match driver.kv_put(at(from), key, value) {
                    Ok(OpOutcome::KvStored { .. }) => {
                        model.insert(key, Known::Value(value));
                        Ok(())
                    }
                    Ok(other) => Err(fail(Some(i), format!("kv_put answered {other:?}"))),
                    Err(e) if acceptable(&e) => {
                        // The ack never arrived: old or new value may
                        // have landed.
                        model.insert(key, Known::Unknown);
                        Ok(())
                    }
                    Err(e) => Err(fail(Some(i), format!("kv_put errored: {e}"))),
                }
            }
            WorkloadOp::KvGet { from, key } if pop > 0 => match driver.kv_get(at(from), key) {
                Ok(OpOutcome::KvFetched { value, .. }) => {
                    let known = model.get(&key).copied().unwrap_or(Known::Absent);
                    match known {
                        Known::Value(v) if value != Some(v) => Err(fail(
                            Some(i),
                            format!("acked write lost: key {key} holds {v}, read {value:?}"),
                        )),
                        Known::Absent if value.is_some() => Err(fail(
                            Some(i),
                            format!("phantom value: key {key} was never acked, read {value:?}"),
                        )),
                        _ => Ok(()),
                    }
                }
                Ok(other) => Err(fail(Some(i), format!("kv_get answered {other:?}"))),
                Err(e) if acceptable(&e) => Ok(()),
                Err(e) => Err(fail(Some(i), format!("kv_get errored: {e}"))),
            },
            WorkloadOp::KvDelete { from, key } if pop > 0 => {
                match driver.kv_delete(at(from), key) {
                    Ok(_) => {
                        model.insert(key, Known::Absent);
                        Ok(())
                    }
                    Err(e) if acceptable(&e) => {
                        model.insert(key, Known::Unknown);
                        Ok(())
                    }
                    Err(e) => Err(fail(Some(i), format!("kv_delete errored: {e}"))),
                }
            }
            // Snapshot has no cluster equivalent; empty-population ops
            // have nothing to address.
            _ => Ok(()),
        };
        result?;
        let elapsed = started.elapsed();
        if elapsed > OP_BOUND {
            return Err(fail(
                Some(i),
                format!("livelock: {op:?} took {elapsed:?} (bound {OP_BOUND:?})"),
            ));
        }
        ops_run += 1;
    }

    // End-of-run audit: heal everything, wait for every host to be seen
    // alive again, then every acked value must read back healthily.
    cluster.ctl().heal_all();
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        cluster
            .driver()
            .heartbeat()
            .map_err(|e| fail(None, format!("heartbeat errored: {e}")))?;
        let all_alive =
            (1..=case.hosts).all(|p| cluster.driver().host_state(p) == HostState::Alive);
        if all_alive {
            break;
        }
        if Instant::now() > deadline {
            let states: Vec<_> = cluster.driver().cluster_stats().hosts;
            return Err(fail(
                None,
                format!("hosts never revived after heal_all: {states:?}"),
            ));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let pop = cluster.driver().population();
    for (&key, &known) in &model {
        let Known::Value(v) = known else { continue };
        if pop == 0 {
            break;
        }
        match cluster.driver().kv_get(0, key) {
            Ok(OpOutcome::KvFetched { value, .. }) if value == Some(v) => {}
            Ok(OpOutcome::KvFetched { value, .. }) => {
                return Err(fail(
                    None,
                    format!("healed read of key {key}: expected {v}, read {value:?}"),
                ));
            }
            Ok(other) => return Err(fail(None, format!("healed kv_get answered {other:?}"))),
            Err(e) => return Err(fail(None, format!("healed kv_get errored: {e}"))),
        }
    }
    let stats = cluster.driver().cluster_stats();
    if stats.revivals < stats.deaths {
        return Err(fail(
            None,
            format!(
                "ledger inconsistent: {} deaths but only {} revivals after heal_all",
                stats.deaths, stats.revivals
            ),
        ));
    }
    let reports = cluster
        .shutdown()
        .map_err(|e| fail(None, format!("shutdown errored: {e}")))?;
    for r in &reports {
        if r.stats.decode_errors > 0 || r.stats.oversized > 0 {
            return Err(fail(
                None,
                format!(
                    "host {} transport corruption: {} decode errors, {} oversized",
                    r.peer, r.stats.decode_errors, r.stats.oversized
                ),
            ));
        }
    }
    Ok(ChaosReport {
        ops_run,
        faults_fired,
        degraded_reads: stats.degraded_reads,
        fail_fast: stats.fail_fast,
    })
}

/// The result of shrinking a failing chaos case.
#[derive(Debug, Clone)]
pub struct ChaosShrinkOutcome {
    /// The minimised case (still failing).
    pub case: ChaosCase,
    /// The failure the minimised case still triggers.
    pub failure: ChaosFailure,
    /// Harness executions spent shrinking.
    pub executions: usize,
}

/// ddmin over the step timeline: repeatedly removes chunks (halves down
/// to single steps) keeping every removal after which [`run_chaos`]
/// still fails.  The returned case always still fails; when the budget
/// runs out the partially shrunk case is returned.
pub fn shrink_chaos(case: &ChaosCase, max_executions: usize) -> ChaosShrinkOutcome {
    let mut failure = run_chaos(case).expect_err("shrink_chaos requires a case that fails");
    let mut current = case.clone();
    let mut executions = 1usize;
    loop {
        let before = current.steps.len();
        let mut window = (current.steps.len() / 2).max(1);
        loop {
            let mut start = 0;
            while start < current.steps.len() && executions < max_executions {
                let end = (start + window).min(current.steps.len());
                let mut candidate = current.clone();
                candidate.steps.drain(start..end);
                executions += 1;
                match run_chaos(&candidate) {
                    Err(f) => {
                        current = candidate;
                        failure = f;
                    }
                    Ok(_) => start = end,
                }
            }
            if window == 1 || executions >= max_executions {
                break;
            }
            window = (window / 2).max(1);
        }
        if executions >= max_executions || current.steps.len() == before {
            break;
        }
    }
    ChaosShrinkOutcome {
        case: current,
        failure,
        executions,
    }
}

// ---------------------------------------------------------------------
// Reproducers
// ---------------------------------------------------------------------

fn encode_step(step: &ChaosStep) -> String {
    match step {
        ChaosStep::Op(op) => encode_op(op),
        ChaosStep::Fault(FaultEvent::Crash(p)) => format!("crash({p})"),
        ChaosStep::Fault(FaultEvent::Restart(p)) => format!("restart({p})"),
        ChaosStep::Fault(FaultEvent::Partition(g)) => format!("partition({g})"),
        ChaosStep::Fault(FaultEvent::Heal) => "heal()".to_string(),
    }
}

/// Serializes a chaos case (optionally annotating the failure it
/// triggers) in the testkit's `.ron` reproducer style.
pub fn encode_chaos_case(case: &ChaosCase, failure: Option<&ChaosFailure>) -> String {
    let mut out = String::new();
    out.push_str("// voronet-testkit chaos reproducer v1\n");
    if let Some(f) = failure {
        for line in f.to_string().lines() {
            let _ = writeln!(out, "// failure: {line}");
        }
    }
    let _ = writeln!(out, "(");
    let _ = writeln!(out, "    seed: {},", case.seed);
    let _ = writeln!(out, "    hosts: {},", case.hosts);
    let _ = writeln!(out, "    nmax: {},", case.nmax);
    let _ = writeln!(
        out,
        "    link: (drop: {}, duplicate: {}, delay: {}, delay_sends: {}),",
        case.link.drop, case.link.duplicate, case.link.delay, case.link.delay_sends
    );
    let _ = writeln!(out, "    steps: [");
    for step in &case.steps {
        let _ = writeln!(out, "        {},", encode_step(step));
    }
    let _ = writeln!(out, "    ],");
    out.push_str(")\n");
    out
}

impl Parser {
    fn chaos_step(&mut self) -> Result<ChaosStep, ReproError> {
        let fault_verb = match self.peek() {
            Some(Token::Ident(s)) => {
                matches!(s.as_str(), "crash" | "restart" | "partition" | "heal")
            }
            _ => false,
        };
        if !fault_verb {
            return Ok(ChaosStep::Op(self.op()?));
        }
        let verb = self.ident()?;
        self.punct('(')?;
        let event = match verb.as_str() {
            "crash" => FaultEvent::Crash(self.u64()?),
            "restart" => FaultEvent::Restart(self.u64()?),
            "partition" => FaultEvent::Partition(self.u64()?),
            _ => FaultEvent::Heal,
        };
        self.punct(')')?;
        Ok(ChaosStep::Fault(event))
    }
}

/// Parses a chaos reproducer back into the case it encodes.
pub fn parse_chaos_case(text: &str) -> Result<ChaosCase, ReproError> {
    let mut p = Parser {
        tokens: tokenize(text)?,
        pos: 0,
    };
    p.punct('(')?;
    p.key("seed")?;
    let seed = p.u64()?;
    p.punct(',')?;
    p.key("hosts")?;
    let hosts = p.u64()?;
    p.punct(',')?;
    p.key("nmax")?;
    let nmax = p.usize()?;
    p.punct(',')?;
    p.key("link")?;
    p.punct('(')?;
    p.key("drop")?;
    let drop = p.f64()?;
    p.punct(',')?;
    p.key("duplicate")?;
    let duplicate = p.f64()?;
    p.punct(',')?;
    p.key("delay")?;
    let delay = p.f64()?;
    p.punct(',')?;
    p.key("delay_sends")?;
    let delay_sends = p.u64()? as u32;
    p.punct(')')?;
    p.punct(',')?;
    p.key("steps")?;
    p.punct('[')?;
    let mut steps = Vec::new();
    loop {
        match p.peek() {
            Some(Token::Punct(']')) => {
                p.next()?;
                break;
            }
            Some(_) => {
                steps.push(p.chaos_step()?);
                if let Some(Token::Punct(',')) = p.peek() {
                    p.next()?;
                }
            }
            None => return Err(perr("unterminated steps list")),
        }
    }
    p.punct(',')?;
    p.punct(')')?;
    if p.peek().is_some() {
        return Err(perr(format!(
            "trailing tokens after case: {}",
            p.next().expect("peeked")
        )));
    }
    Ok(ChaosCase {
        seed,
        hosts,
        nmax,
        link: LinkFaults {
            drop,
            duplicate,
            delay,
            delay_sends,
        },
        steps,
    })
}

/// Writes a chaos reproducer under `dir` (created if missing) and
/// returns its path, never overwriting an existing witness.
pub fn write_chaos_reproducer(
    dir: &Path,
    case: &ChaosCase,
    failure: Option<&ChaosFailure>,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let stem = format!("chaos-seed{}-{}steps", case.seed, case.steps.len());
    let mut path = dir.join(format!("{stem}.ron"));
    let mut n = 1usize;
    while path.exists() {
        n += 1;
        path = dir.join(format!("{stem}-{n}.ron"));
    }
    std::fs::write(&path, encode_chaos_case(case, failure))?;
    Ok(path)
}

/// Reads a chaos reproducer file.
pub fn read_chaos_reproducer(path: &Path) -> Result<ChaosCase, ReproError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| perr(format!("cannot read {}: {e}", path.display())))?;
    parse_chaos_case(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_schedules_faults() {
        let spec = ChaosSpec::smoke(11);
        let a = generate_chaos(&spec);
        let b = generate_chaos(&spec);
        assert_eq!(a, b);
        assert!(a
            .steps
            .iter()
            .any(|s| matches!(s, ChaosStep::Fault(FaultEvent::Crash(_)))));
        assert!(a.steps[..spec.warmup]
            .iter()
            .all(|s| matches!(s, ChaosStep::Op(WorkloadOp::Insert { .. }))));
        assert_ne!(a.steps, generate_chaos(&ChaosSpec::smoke(12)).steps);
    }

    #[test]
    fn chaos_cases_round_trip_through_reproducers() {
        let case = generate_chaos(&ChaosSpec {
            warmup: 6,
            ops: 40,
            ..ChaosSpec::smoke(11)
        });
        let text = encode_chaos_case(&case, None);
        assert_eq!(parse_chaos_case(&text).unwrap(), case);
        let annotated = encode_chaos_case(
            &case,
            Some(&ChaosFailure {
                step: Some(3),
                detail: "acked write lost".into(),
            }),
        );
        assert!(annotated.contains("// failure"));
        assert_eq!(parse_chaos_case(&annotated).unwrap(), case);
        assert!(parse_chaos_case(&text.replace("crash", "meteor")).is_err());
    }

    #[test]
    fn a_generated_chaos_timeline_survives_its_audit() {
        let report = run_chaos(&generate_chaos(&ChaosSpec {
            warmup: 16,
            ops: 60,
            ..ChaosSpec::smoke(5)
        }))
        .unwrap_or_else(|f| panic!("chaos audit failed: {f}"));
        assert!(report.ops_run > 0);
        assert!(report.faults_fired > 0, "the schedule must inject faults");
    }
}
