//! The naive O(n²) reference model every engine is checked against.
//!
//! The oracle keeps nothing but the ground truth an overlay cannot get
//! wrong without being broken: the set of live objects and their
//! coordinates, plus the monotonically assigned id counter (see
//! [`VoroNet::next_object_id`](voronet_core::VoroNet::next_object_id)).
//! From that it predicts, by brute force, what every [`Op`] must produce:
//!
//! * insert outcomes (assigned id, or the exact failure kind, in the
//!   engine's own check order: non-finite, outside domain, duplicate);
//! * route owners (the nearest live object to the target — linear scan);
//! * range/radius matches (exhaustive predicate filtering, sorted by id)
//!   and the flood-accounting invariant `visited == flood_messages + 1`;
//! * structural facts: greedy hop counts bounded by the population, and —
//!   for small populations — that every interior brute-force Delaunay
//!   edge appears in the engine's Voronoi neighbour sets and that a
//!   linear-scan greedy walk over those brute-force neighbourhoods
//!   terminates at the owner (the paper's Theorem 1 property).
//!
//! Engines additionally have to agree with *each other* bit for bit; that
//! cross-checking lives in [`crate::harness`].  The oracle's job is to
//! anchor the agreement to an independent, obviously-correct model.

use std::collections::BTreeMap;
use voronet_api::{Op, OpResult, ServiceOp, ServiceResult};
use voronet_core::{ErrorKind, ObjectId, VoroNetConfig};
use voronet_geom::hull::{convex_hull, delaunay_edges_bruteforce};
use voronet_geom::{Point2, Rect};
use voronet_services::{key_point, topic_key, ServiceState};

/// The brute-force reference model of one overlay.
#[derive(Debug, Clone)]
pub struct OracleModel {
    next_id: u64,
    /// Live objects in insertion order (the oracle never needs the
    /// engines' dense order — set equality is checked at audit points).
    live: Vec<(ObjectId, Point2)>,
    domain: Rect,
    /// Naive service model: standing subscriptions (linear-scan
    /// resolution, no tessellation involved).
    subs: BTreeMap<ObjectId, Rect>,
    /// Per-topic publish counters, mirroring the service layer's.
    topic_seqs: BTreeMap<[u64; 4], u64>,
    /// Naive KV model: a single key → value map.  No placement is
    /// stored — ownership is recomputed from scratch at every lookup, so
    /// a missed handoff in the engine shows up as a prediction mismatch.
    kv: BTreeMap<u64, u64>,
}

impl OracleModel {
    /// Creates the model of a fresh overlay built from `config`.
    pub fn new(config: &VoroNetConfig) -> Self {
        OracleModel {
            next_id: 0,
            live: Vec::new(),
            domain: config.domain,
            subs: BTreeMap::new(),
            topic_seqs: BTreeMap::new(),
            kv: BTreeMap::new(),
        }
    }

    /// Number of live objects in the model.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when the model holds no object.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Coordinates of a live object.
    pub fn coords(&self, id: ObjectId) -> Option<Point2> {
        self.live.iter().find(|&&(o, _)| o == id).map(|&(_, p)| p)
    }

    /// True when `id` is live in the model.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.coords(id).is_some()
    }

    /// The live objects, sorted by id (for set comparisons).
    pub fn sorted_ids(&self) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self.live.iter().map(|&(id, _)| id).collect();
        ids.sort_unstable();
        ids
    }

    /// The nearest live object to `p` by squared Euclidean distance
    /// (linear scan).  Ties return the first-inserted minimiser; callers
    /// that must be tie-robust compare distances instead of ids.
    pub fn nearest(&self, p: Point2) -> Option<ObjectId> {
        self.live
            .iter()
            .min_by(|a, b| {
                a.1.distance2(p)
                    .partial_cmp(&b.1.distance2(p))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|&(id, _)| id)
    }

    fn min_distance2(&self, p: Point2) -> Option<f64> {
        self.live
            .iter()
            .map(|&(_, q)| q.distance2(p))
            .fold(None, |acc, d| {
                Some(match acc {
                    None => d,
                    Some(a) if d < a => d,
                    Some(a) => a,
                })
            })
    }

    /// Checks one engine `result` against the model's prediction for
    /// `op`, then applies the operation to the model.  Returns the
    /// divergence diagnostic on mismatch; the model is only mutated by
    /// results it accepted.
    pub fn check_apply(&mut self, op: &Op, result: &OpResult) -> Result<(), String> {
        match *op {
            Op::Insert { position } => self.check_insert(position, result),
            Op::Remove { id } => self.check_remove(id, result),
            Op::Route { from, target } => self.check_route(from, target, None, result),
            Op::RouteBetween { from, to } => {
                let target = self.coords(to);
                match target {
                    None => expect_failure(result, &ErrorKind::UnknownObject(to), "route_between"),
                    Some(target) => self.check_route(from, target, Some(to), result),
                }
            }
            Op::Range { from, query } => {
                self.check_area(from, result, "range", |p| query.rect.contains(p))
            }
            Op::Radius { from, query } => self.check_area(from, result, "radius", |p| {
                p.distance2(query.center) <= query.radius * query.radius
            }),
            Op::Snapshot { id } => self.check_snapshot(id, result),
            Op::Service(service) => self.check_service(service, result),
        }
    }

    fn check_insert(&mut self, position: Point2, result: &OpResult) -> Result<(), String> {
        // The engine's own check order: finiteness, domain, duplication.
        if !position.is_finite() {
            return expect_failure(result, &ErrorKind::NotFinite, "insert");
        }
        if !self.domain.contains(position) {
            return expect_failure(result, &ErrorKind::OutsideDomain, "insert");
        }
        if let Some(&(existing, _)) = self
            .live
            .iter()
            .find(|&&(_, p)| p.x == position.x && p.y == position.y)
        {
            return expect_failure(result, &ErrorKind::DuplicatePosition(existing), "insert");
        }
        let OpResult::Inserted(outcome) = result else {
            return Err(format!(
                "insert of {position} must succeed, engine returned {result:?}"
            ));
        };
        if outcome.id != ObjectId(self.next_id) {
            return Err(format!(
                "insert assigned {}, oracle expected the monotonic id {}",
                outcome.id, self.next_id
            ));
        }
        self.live.push((outcome.id, position));
        self.next_id += 1;
        Ok(())
    }

    fn check_remove(&mut self, id: ObjectId, result: &OpResult) -> Result<(), String> {
        if !self.contains(id) {
            return expect_failure(result, &ErrorKind::UnknownObject(id), "remove");
        }
        let OpResult::Removed(outcome) = result else {
            return Err(format!(
                "remove of live {id} must succeed, engine returned {result:?}"
            ));
        };
        if outcome.id != id {
            return Err(format!(
                "remove of {id} reported departure of {}",
                outcome.id
            ));
        }
        self.live.retain(|&(o, _)| o != id);
        // Mirror the service layer's churn rules: a departed object's
        // subscription dies with it, and an empty overlay has no owner
        // left to hold any KV entry.
        self.subs.remove(&id);
        if self.live.is_empty() {
            self.subs.clear();
            self.kv.clear();
        }
        Ok(())
    }

    fn check_route(
        &self,
        from: ObjectId,
        target: Point2,
        to: Option<ObjectId>,
        result: &OpResult,
    ) -> Result<(), String> {
        if !self.contains(from) {
            return expect_failure(result, &ErrorKind::UnknownObject(from), "route");
        }
        let OpResult::Routed(outcome) = result else {
            return Err(format!(
                "route from live {from} must succeed, engine returned {result:?}"
            ));
        };
        // The owner of the target's region is its nearest live object.
        // Compare by distance, not id, so exact ties stay legal.
        let min_d2 = self.min_distance2(target).expect("model is non-empty");
        let owner_d2 = self
            .coords(outcome.owner)
            .ok_or_else(|| format!("route terminated at dead object {}", outcome.owner))?
            .distance2(target);
        if owner_d2 > min_d2 {
            return Err(format!(
                "route to {target} terminated at {} (d²={owner_d2:.3e}) but a live object \
                 is closer (d²={min_d2:.3e})",
                outcome.owner
            ));
        }
        if let Some(to) = to {
            // A route towards an existing object's exact coordinates must
            // terminate at that object (positions are unique).
            if outcome.owner != to {
                return Err(format!(
                    "route towards {to} terminated at {} instead",
                    outcome.owner
                ));
            }
        }
        // Greedy strictly improves the distance every hop, so a walk can
        // never revisit an object: hops is bounded by the population.
        let hops_max = self.len().saturating_sub(1) as u32;
        if outcome.hops > hops_max {
            return Err(format!(
                "route took {} hops over a population of {} (greedy visits each object at most once)",
                outcome.hops,
                self.len()
            ));
        }
        if outcome.owner == from && outcome.hops != 0 {
            return Err(format!(
                "self-terminating route reported {} hops, expected 0",
                outcome.hops
            ));
        }
        Ok(())
    }

    fn check_area(
        &self,
        from: ObjectId,
        result: &OpResult,
        what: &str,
        matches: impl Fn(Point2) -> bool,
    ) -> Result<(), String> {
        if !self.contains(from) {
            return expect_failure(result, &ErrorKind::UnknownObject(from), what);
        }
        let OpResult::Queried(outcome) = result else {
            return Err(format!(
                "{what} query from live {from} must succeed, engine returned {result:?}"
            ));
        };
        let expected: Vec<ObjectId> = {
            let mut v: Vec<ObjectId> = self
                .live
                .iter()
                .filter(|&&(_, p)| matches(p))
                .map(|&(id, _)| id)
                .collect();
            v.sort_unstable();
            v
        };
        if outcome.matches != expected {
            return Err(format!(
                "{what} query matches diverge from the exhaustive scan: engine {:?}, oracle {:?}",
                outcome.matches, expected
            ));
        }
        if outcome.visited < outcome.matches.len().max(1) || outcome.visited > self.len() {
            return Err(format!(
                "{what} query visited {} objects (matches {}, population {})",
                outcome.visited,
                outcome.matches.len(),
                self.len()
            ));
        }
        // Every flood message discovers exactly one new object beyond the
        // routed-to owner.
        if outcome.flood_messages != (outcome.visited as u64).saturating_sub(1) {
            return Err(format!(
                "{what} query flood accounting broken: visited {} but {} flood messages \
                 (must be visited - 1)",
                outcome.visited, outcome.flood_messages
            ));
        }
        if outcome.routing_hops > self.len().saturating_sub(1) as u32 {
            return Err(format!(
                "{what} query routed {} hops over a population of {}",
                outcome.routing_hops,
                self.len()
            ));
        }
        Ok(())
    }

    fn check_snapshot(&self, id: ObjectId, result: &OpResult) -> Result<(), String> {
        if !self.contains(id) {
            return expect_failure(result, &ErrorKind::UnknownObject(id), "snapshot");
        }
        let OpResult::Snapshotted(view) = result else {
            return Err(format!(
                "snapshot of live {id} must succeed, engine returned {result:?}"
            ));
        };
        if view.id != id {
            return Err(format!("snapshot of {id} described object {}", view.id));
        }
        if view.coords != self.coords(id).expect("checked live") {
            return Err(format!(
                "snapshot of {id} carries coordinates {} but the oracle recorded {}",
                view.coords,
                self.coords(id).expect("checked live")
            ));
        }
        Ok(())
    }

    /// Checks one service operation against the naive model: linear-scan
    /// subscriber resolution, a single-map KV with ownership recomputed
    /// from scratch at every access.  The model never consults a
    /// tessellation, so an engine-side handoff or delivery bug cannot
    /// hide behind shared machinery.
    fn check_service(&mut self, op: ServiceOp, result: &OpResult) -> Result<(), String> {
        match op {
            ServiceOp::Subscribe { id, region } => {
                if !self.contains(id) {
                    return expect_failure(result, &ErrorKind::UnknownObject(id), "subscribe");
                }
                let OpResult::Service(ServiceResult::Subscribed(outcome)) = result else {
                    return Err(format!(
                        "subscribe of live {id} must succeed, engine returned {result:?}"
                    ));
                };
                let replaced = self.subs.insert(id, region).is_some();
                if (outcome.id, outcome.replaced) != (id, replaced) {
                    return Err(format!(
                        "subscribe of {id} (replaced: {replaced}) reported {outcome:?}"
                    ));
                }
                Ok(())
            }
            ServiceOp::Unsubscribe { id } => {
                let existed = self.subs.remove(&id).is_some();
                let OpResult::Service(ServiceResult::Unsubscribed(outcome)) = result else {
                    return Err(format!(
                        "unsubscribe always succeeds, engine returned {result:?}"
                    ));
                };
                if (outcome.id, outcome.existed) != (id, existed) {
                    return Err(format!(
                        "unsubscribe of {id} (existed: {existed}) reported {outcome:?}"
                    ));
                }
                Ok(())
            }
            ServiceOp::Publish { from, region, .. } => {
                if !self.contains(from) {
                    return expect_failure(result, &ErrorKind::UnknownObject(from), "publish");
                }
                let OpResult::Service(ServiceResult::Published(outcome)) = result else {
                    return Err(format!(
                        "publish from live {from} must succeed, engine returned {result:?}"
                    ));
                };
                let seq = {
                    let s = self.topic_seqs.entry(topic_key(&region)).or_insert(0);
                    *s += 1;
                    *s
                };
                if outcome.seq != seq {
                    return Err(format!(
                        "publish into {region:?} carries seq {}, oracle counted {seq}",
                        outcome.seq
                    ));
                }
                // Linear-scan resolution: a subscriber is delivered iff its
                // region intersects the publish region AND its coordinates
                // lie inside the flooded rectangle; interest the flood
                // cannot reach is a miss.  BTreeMap iteration is id-sorted,
                // matching the engine's ordering contract.
                let mut delivered = Vec::new();
                let mut missed = Vec::new();
                for (&sub, sub_region) in &self.subs {
                    if !sub_region.intersects(&region) {
                        continue;
                    }
                    let inside = self.coords(sub).is_some_and(|p| region.contains(p));
                    if inside {
                        delivered.push(sub);
                    } else {
                        missed.push(sub);
                    }
                }
                if outcome.delivered != delivered || outcome.missed != missed {
                    return Err(format!(
                        "publish resolution diverges from the linear scan: engine delivered \
                         {:?} / missed {:?}, oracle delivered {delivered:?} / missed {missed:?}",
                        outcome.delivered, outcome.missed
                    ));
                }
                // The flood accounting obeys the same invariants as any
                // area query.
                if outcome.visited < 1 || outcome.visited > self.len() {
                    return Err(format!(
                        "publish visited {} objects of a population of {}",
                        outcome.visited,
                        self.len()
                    ));
                }
                if outcome.flood_messages != (outcome.visited as u64).saturating_sub(1) {
                    return Err(format!(
                        "publish flood accounting broken: visited {} but {} flood messages",
                        outcome.visited, outcome.flood_messages
                    ));
                }
                if outcome.routing_hops > self.len().saturating_sub(1) as u32 {
                    return Err(format!(
                        "publish routed {} hops over a population of {}",
                        outcome.routing_hops,
                        self.len()
                    ));
                }
                Ok(())
            }
            ServiceOp::KvPut { from, key, value } => {
                if !self.contains(from) {
                    return expect_failure(result, &ErrorKind::UnknownObject(from), "kv_put");
                }
                let OpResult::Service(ServiceResult::Put(outcome)) = result else {
                    return Err(format!(
                        "kv_put from live {from} must succeed, engine returned {result:?}"
                    ));
                };
                self.check_kv_owner("kv_put", key, outcome.owner)?;
                if outcome.hops > self.len().saturating_sub(1) as u32 {
                    return Err(format!("kv_put routed {} hops", outcome.hops));
                }
                let replaced = self.kv.insert(key, value).is_some();
                if outcome.replaced != replaced {
                    return Err(format!(
                        "kv_put of key {key} reported replaced: {}, oracle says {replaced}",
                        outcome.replaced
                    ));
                }
                for replica in &outcome.replicas {
                    if !self.contains(*replica) {
                        return Err(format!(
                            "kv_put of key {key} reported dead replica {replica}"
                        ));
                    }
                }
                Ok(())
            }
            ServiceOp::KvGet { from, key } => {
                if !self.contains(from) {
                    return expect_failure(result, &ErrorKind::UnknownObject(from), "kv_get");
                }
                let OpResult::Service(ServiceResult::Got(outcome)) = result else {
                    return Err(format!(
                        "kv_get from live {from} must succeed, engine returned {result:?}"
                    ));
                };
                self.check_kv_owner("kv_get", key, outcome.owner)?;
                // The single-map model recomputes ownership implicitly: a
                // stored key is always found.  An engine that missed a
                // churn handoff answers `None` here and diverges.
                let expected = self.kv.get(&key).copied();
                if outcome.value != expected {
                    return Err(format!(
                        "kv_get of key {key} returned {:?}, the naive model holds {expected:?} \
                         (stale ownership after churn?)",
                        outcome.value
                    ));
                }
                Ok(())
            }
            ServiceOp::KvDelete { from, key } => {
                if !self.contains(from) {
                    return expect_failure(result, &ErrorKind::UnknownObject(from), "kv_delete");
                }
                let OpResult::Service(ServiceResult::Deleted(outcome)) = result else {
                    return Err(format!(
                        "kv_delete from live {from} must succeed, engine returned {result:?}"
                    ));
                };
                self.check_kv_owner("kv_delete", key, outcome.owner)?;
                let existed = self.kv.remove(&key).is_some();
                if outcome.existed != existed {
                    return Err(format!(
                        "kv_delete of key {key} reported existed: {}, oracle says {existed}",
                        outcome.existed
                    ));
                }
                Ok(())
            }
        }
    }

    /// The owner an engine reports for `key` must be (one of) the nearest
    /// live object(s) to the key's home coordinate — compared by
    /// distance, not id, so exact ties stay legal.
    fn check_kv_owner(&self, what: &str, key: u64, owner: ObjectId) -> Result<(), String> {
        let kp = key_point(key, self.domain);
        let min_d2 = self.min_distance2(kp).expect("model is non-empty");
        let owner_d2 = self
            .coords(owner)
            .ok_or_else(|| format!("{what} of key {key} reported dead owner {owner}"))?
            .distance2(kp);
        if owner_d2 > min_d2 {
            return Err(format!(
                "{what} of key {key} reported owner {owner} (d²={owner_d2:.3e}) but a live \
                 object is closer to the key point (d²={min_d2:.3e})"
            ));
        }
        Ok(())
    }

    /// Compares an engine's service-layer state against the naive model:
    /// identical subscriptions, identical key → value content, and every
    /// stored placement pointing at a nearest live object.
    pub fn check_service_state(&self, engine: &str, state: &ServiceState) -> Result<(), String> {
        if state.subscriptions != self.subs {
            return Err(format!(
                "{engine} subscriptions diverge from the oracle: engine {:?}, oracle {:?}",
                state.subscriptions, self.subs
            ));
        }
        let engine_kv: BTreeMap<u64, u64> = state.kv.iter().map(|(&k, e)| (k, e.value)).collect();
        if engine_kv != self.kv {
            return Err(format!(
                "{engine} KV content diverges from the oracle: engine {engine_kv:?}, \
                 oracle {:?}",
                self.kv
            ));
        }
        for (&key, entry) in &state.kv {
            self.check_kv_owner(engine, key, entry.owner)?;
        }
        Ok(())
    }

    /// Compares the model's live set against an engine's population
    /// (`ids` in any order, `coords` the engine's lookup).
    pub fn check_population(
        &self,
        engine: &str,
        ids: &[ObjectId],
        coords: impl Fn(ObjectId) -> Option<Point2>,
    ) -> Result<(), String> {
        let mut engine_ids = ids.to_vec();
        engine_ids.sort_unstable();
        if engine_ids != self.sorted_ids() {
            return Err(format!(
                "{engine} population diverges from the oracle: engine {engine_ids:?}, \
                 oracle {:?}",
                self.sorted_ids()
            ));
        }
        for &(id, p) in &self.live {
            match coords(id) {
                Some(q) if q == p => {}
                other => {
                    return Err(format!(
                        "{engine} coordinates of {id} diverge: engine {other:?}, oracle {p}"
                    ))
                }
            }
        }
        Ok(())
    }

    /// Brute-force structural audit for small populations: every interior
    /// *strictly* Delaunay edge of the live point set (a circumcircle
    /// exists with every other point strictly outside) must appear in the
    /// engine's Voronoi neighbour relation, and a linear-scan greedy walk
    /// over the brute-force neighbourhoods must terminate at the nearest
    /// object.  Hull edges are skipped — the engine triangulates inside a
    /// sentinel box, so its hull differs legitimately — and so are
    /// co-circular ties, where several triangulations are equally valid
    /// and the engine is free to keep either diagonal.  Fully collinear
    /// populations (which real fuzz runs do produce: jittered-grid points
    /// clamp onto the domain edge) degenerate to a path along the line,
    /// which is exactly the adjacency the walk uses then.
    pub fn delaunay_reference_check(
        &self,
        neighbours_of: impl Fn(ObjectId) -> Vec<ObjectId>,
        walk_targets: &[Point2],
    ) -> Result<(), String> {
        if self.len() < 4 {
            return Ok(());
        }
        let points: Vec<Point2> = self.live.iter().map(|&(_, p)| p).collect();
        let ids: Vec<ObjectId> = self.live.iter().map(|&(id, _)| id).collect();
        let hull = convex_hull(&points);
        // A point *on the hull boundary* — a hull vertex or collinear with
        // a hull edge (clamped jittered-grid points line whole segments up
        // on the domain edge) — gets the sentinel-box exemption: the
        // engine's triangulation legitimately differs there.
        let on_hull = |p: Point2| {
            use voronet_geom::{orient2d, Orientation};
            let n = hull.len();
            if n < 3 {
                return true;
            }
            (0..n).any(|i| {
                let (a, b) = (hull[i], hull[(i + 1) % n]);
                orient2d(a, b, p) == Orientation::Zero
                    && p.x >= a.x.min(b.x)
                    && p.x <= a.x.max(b.x)
                    && p.y >= a.y.min(b.y)
                    && p.y <= a.y.max(b.y)
            })
        };
        let edges = delaunay_edges_bruteforce(&points);

        // Interior, strictly Delaunay edges are Voronoi neighbours.  The
        // non-strict test above treats exactly co-circular points as
        // "empty", so it claims *both* diagonals of a co-circular quad;
        // only edges with a strictly empty circumcircle are present in
        // every valid triangulation and may be demanded of the engine.
        // The engine triangulates the points *plus* its four sentinel-box
        // corners, so the witness circumcircle must exclude the sentinels
        // too — near-collinear interior triples (clamped grid points in a
        // thin strip) otherwise certify with a circle so large it swallows
        // the box.
        let sentinel_tri = voronet_geom::Triangulation::new(self.domain);
        let sentinels: Vec<Point2> = (0..voronet_geom::triangulation::SENTINEL_COUNT)
            .map(|v| sentinel_tri.point(v))
            .collect();
        for &(i, j) in &edges {
            if on_hull(points[i]) || on_hull(points[j]) {
                continue;
            }
            if !strictly_delaunay(&points, &sentinels, i, j) {
                continue;
            }
            let ni = neighbours_of(ids[i]);
            if !ni.contains(&ids[j]) {
                return Err(format!(
                    "brute-force Delaunay edge {} ↔ {} (interior, strictly empty circumcircle) \
                     missing from the engine's Voronoi neighbours of {} ({ni:?})",
                    ids[i], ids[j], ids[i]
                ));
            }
        }

        // Linear-scan greedy walks over the brute-force neighbourhoods
        // reach the nearest object (Theorem 1 of the paper).  The
        // non-strict edge set is a superset of a valid Delaunay
        // triangulation, so greedy can never stall early on it — except
        // when every point is collinear and no triangle exists at all;
        // there the triangulation degenerates to the sorted path.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); points.len()];
        if edges.is_empty() {
            let mut order: Vec<usize> = (0..points.len()).collect();
            order.sort_by(|&a, &b| points[a].lex_cmp(&points[b]));
            for w in order.windows(2) {
                adj[w[0]].push(w[1]);
                adj[w[1]].push(w[0]);
            }
        }
        for &(i, j) in &edges {
            adj[i].push(j);
            adj[j].push(i);
        }
        for (t, &target) in walk_targets.iter().enumerate() {
            let start = t % points.len();
            let mut cur = start;
            let mut cur_d = points[cur].distance2(target);
            let mut hops = 0u32;
            while let Some((best, best_d)) = adj[cur]
                .iter()
                .map(|&n| (n, points[n].distance2(target)))
                .filter(|&(_, d)| d < cur_d)
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            {
                cur = best;
                cur_d = best_d;
                hops += 1;
                if hops as usize > points.len() {
                    return Err(format!(
                        "brute-force greedy walk towards {target} did not terminate \
                         within {} hops",
                        points.len()
                    ));
                }
            }
            let min_d2 = self.min_distance2(target).expect("non-empty");
            if cur_d > min_d2 {
                return Err(format!(
                    "brute-force greedy walk from {} towards {target} stalled at {} \
                     (d²={cur_d:.3e}) although an object at d²={min_d2:.3e} exists — \
                     local minimum in the Delaunay greedy walk",
                    ids[start], ids[cur]
                ));
            }
        }
        Ok(())
    }
}

/// True when some circumcircle through `a` and `b` keeps every other
/// point — **including the engine's sentinel-box corners** — *strictly*
/// outside.  The edge then belongs to every valid Delaunay triangulation
/// of points ∪ sentinels (the set the engine actually triangulates), not
/// merely to one of the tied alternatives a co-circular configuration
/// admits.
fn strictly_delaunay(points: &[Point2], sentinels: &[Point2], a: usize, b: usize) -> bool {
    use voronet_geom::{incircle, orient2d, Orientation};
    let (pa, pb) = (points[a], points[b]);
    'candidates: for c in 0..points.len() {
        if c == a || c == b {
            continue;
        }
        let pc = points[c];
        let orientation = orient2d(pa, pb, pc);
        if orientation == Orientation::Zero {
            continue;
        }
        let (x, y, z) = if orientation == Orientation::Positive {
            (pa, pb, pc)
        } else {
            (pa, pc, pb)
        };
        for (d, &pd) in points.iter().enumerate() {
            if d == a || d == b || d == c {
                continue;
            }
            if incircle(x, y, z, pd) != Orientation::Negative {
                continue 'candidates;
            }
        }
        for &pd in sentinels {
            if incircle(x, y, z, pd) != Orientation::Negative {
                continue 'candidates;
            }
        }
        return true;
    }
    false
}

fn expect_failure(result: &OpResult, kind: &ErrorKind, what: &str) -> Result<(), String> {
    match result {
        OpResult::Failed(e) if e.kind() == kind => Ok(()),
        other => Err(format!(
            "{what} must fail with {kind:?}, engine returned {other:?}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voronet_api::{Op, Overlay, OverlayBuilder};

    #[test]
    fn oracle_tracks_a_real_engine_op_for_op() {
        let mut engine = OverlayBuilder::new(200).seed(5).build_sync();
        let mut oracle = OracleModel::new(&engine.config().clone());
        let mut points =
            voronet_workloads::PointGenerator::new(voronet_workloads::Distribution::Uniform, 5);
        let mut ops: Vec<Op> = (0..40)
            .map(|_| Op::Insert {
                position: points.next_point(),
            })
            .collect();
        ops.push(Op::Route {
            from: ObjectId(0),
            target: Point2::new(0.5, 0.5),
        });
        ops.push(Op::RouteBetween {
            from: ObjectId(1),
            to: ObjectId(2),
        });
        ops.push(Op::Remove { id: ObjectId(3) });
        ops.push(Op::Snapshot { id: ObjectId(4) });
        for op in &ops {
            let result = engine.apply(op);
            oracle.check_apply(op, &result).unwrap();
        }
        assert_eq!(oracle.len(), engine.len());
        oracle
            .check_population("sync", &engine.ids(), |id| engine.coords(id))
            .unwrap();
    }

    #[test]
    fn oracle_rejects_wrong_outcomes() {
        let mut oracle = OracleModel::new(&VoroNetConfig::new(10));
        let insert = Op::Insert {
            position: Point2::new(0.5, 0.5),
        };
        // Wrong id.
        let bogus = OpResult::Inserted(voronet_api::InsertOutcome { id: ObjectId(7) });
        assert!(oracle.check_apply(&insert, &bogus).is_err());
        // Correct id applies.
        let ok = OpResult::Inserted(voronet_api::InsertOutcome { id: ObjectId(0) });
        oracle.check_apply(&insert, &ok).unwrap();
        // Duplicate must fail with the existing id.
        let dup = OpResult::Inserted(voronet_api::InsertOutcome { id: ObjectId(1) });
        assert!(oracle.check_apply(&insert, &dup).is_err());
        // A wrong hop count on a self-route is caught.
        let self_route = Op::RouteBetween {
            from: ObjectId(0),
            to: ObjectId(0),
        };
        let wrong = OpResult::Routed(voronet_api::RouteOutcome {
            owner: ObjectId(0),
            hops: 1,
        });
        assert!(oracle.check_apply(&self_route, &wrong).is_err());
    }

    #[test]
    fn delaunay_reference_check_matches_a_healthy_engine() {
        let mut engine = OverlayBuilder::new(100).seed(9).build_sync();
        let mut oracle = OracleModel::new(&engine.config().clone());
        let mut points =
            voronet_workloads::PointGenerator::new(voronet_workloads::Distribution::Uniform, 9);
        for _ in 0..30 {
            let op = Op::Insert {
                position: points.next_point(),
            };
            let r = engine.apply(&op);
            oracle.check_apply(&op, &r).unwrap();
        }
        let targets: Vec<Point2> = (0..8)
            .map(|i| Point2::new(0.1 + 0.1 * f64::from(i), 0.9 - 0.1 * f64::from(i)))
            .collect();
        oracle
            .delaunay_reference_check(|id| engine.net().voronoi_neighbours(id).unwrap(), &targets)
            .unwrap();
    }
}
