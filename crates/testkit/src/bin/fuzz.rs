//! The testkit CLI: seeded differential fuzzing with shrinking
//! reproducers.
//!
//! ```text
//! fuzz [--seed S] [--cases N] [--ops N] [--warmup N] [--threads N]
//!      [--services] [--out DIR] [--replay FILE]... [--no-replay-dir]
//!      [--dump-ops FILE] [--demo-fault] [--codec] [--chaos]
//! ```
//!
//! `--services` biases case generation towards service segments (region
//! pub/sub and coordinate-keyed KV) — the CI `services-smoke` step runs
//! with it; service traffic appears in every case regardless.
//!
//! `--chaos` runs the chaos pass instead of differential fuzzing: it
//! replays every committed chaos reproducer under `tests/chaos/` (a
//! reproducer that fails its audit fails the run), then executes seeded
//! crash/partition timelines against the fault-injected cluster; a
//! failing timeline is ddmin-shrunk and written to `tests/chaos/`.  The
//! CI `chaos-smoke` step runs it under `VORONET_SMOKE=1`.
//!
//! `--codec` runs the standalone wire-codec property pass
//! ([`voronet_testkit::run_codec_pass`]) instead of differential
//! fuzzing — round-trip canonicality, truncation/corruption totality —
//! and exits; the CI `net-smoke` step uses it under `VORONET_SMOKE=1`.
//!
//! Default behaviour (the CI `fuzz-smoke` step):
//!
//! 1. replay every reproducer file under `--out` (default
//!    `tests/reproducers/`) — a reproducer that still diverges fails the
//!    run, so a divergence committed to the tree must be fixed before CI
//!    goes green again;
//! 2. run `--cases` generated cases of `--ops` ops from `--seed`
//!    upwards; on divergence, shrink the case and write a reproducer
//!    into `--out`, then exit non-zero.
//!
//! `VORONET_SMOKE=1` selects the CI budget (one 10k-op acceptance case
//! plus a handful of smaller mixed cases); without it the fuzzer runs
//! the same shape with a larger case count.  `--demo-fault` plants the
//! deliberate frozen-route defect and *expects* to catch and shrink it —
//! a self-test of the whole detect→shrink→reproduce pipeline.

use std::path::PathBuf;
use std::process::ExitCode;
use voronet_testkit::{
    generate_case, generate_chaos, list_reproducers, read_chaos_reproducer, read_reproducer,
    run_case, run_chaos, shrink_case, shrink_chaos, write_chaos_reproducer, write_reproducer,
    ChaosSpec, Fault, FuzzSpec,
};

struct Args {
    seed: u64,
    cases: usize,
    ops: Option<usize>,
    warmup: usize,
    threads: usize,
    out: PathBuf,
    replay: Vec<PathBuf>,
    replay_dir: bool,
    dump_ops: Option<PathBuf>,
    demo_fault: bool,
    codec: bool,
    chaos: bool,
    services: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 2007,
        cases: if smoke() { 4 } else { 16 },
        ops: None,
        warmup: 64,
        threads: 4,
        out: PathBuf::from("tests/reproducers"),
        replay: Vec::new(),
        replay_dir: true,
        dump_ops: None,
        demo_fault: false,
        codec: false,
        chaos: false,
        services: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--cases" => {
                args.cases = value("--cases")?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?
            }
            "--ops" => args.ops = Some(value("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?),
            "--warmup" => {
                args.warmup = value("--warmup")?
                    .parse()
                    .map_err(|e| format!("--warmup: {e}"))?
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--replay" => args.replay.push(PathBuf::from(value("--replay")?)),
            "--no-replay-dir" => args.replay_dir = false,
            "--dump-ops" => args.dump_ops = Some(PathBuf::from(value("--dump-ops")?)),
            "--demo-fault" => args.demo_fault = true,
            "--codec" => args.codec = true,
            "--chaos" => args.chaos = true,
            "--services" => args.services = true,
            "--help" | "-h" => {
                println!(
                    "fuzz [--seed S] [--cases N] [--ops N] [--warmup N] [--threads N] \
                     [--services] [--out DIR] [--replay FILE]... [--no-replay-dir] \
                     [--dump-ops FILE] [--demo-fault] [--codec] [--chaos]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn smoke() -> bool {
    std::env::var("VORONET_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Dumps the first-round resolved op batch of a case (the id-level replay
/// format of `voronet_api::replay`) for manual debugging.
fn dump_resolved_ops(case: &voronet_testkit::FuzzCase, path: &PathBuf) -> std::io::Result<()> {
    use voronet_api::{resolve_workload, Overlay, OverlayBuilder};
    let mut engine = OverlayBuilder::new(case.nmax).seed(case.seed).build_sync();
    let mut text = String::new();
    for chunk in case.script.chunks(case.round.max(1)) {
        let ops = resolve_workload(&engine, chunk);
        text.push_str(&voronet_api::replay::encode_batch(&ops));
        for op in &ops {
            engine.apply(op);
        }
    }
    std::fs::write(path, text)
}

/// The `--chaos` pass: replay committed chaos reproducers, then run
/// seeded crash/partition timelines; shrink and persist any failure.
fn run_chaos_pass(args: &Args) -> ExitCode {
    let dir = PathBuf::from("tests/chaos");
    let mut failures = 0usize;
    for path in list_reproducers(&dir) {
        match read_chaos_reproducer(&path) {
            Err(e) => {
                eprintln!("fuzz: {}: {e}", path.display());
                failures += 1;
            }
            Ok(case) => match run_chaos(&case) {
                Ok(report) => println!(
                    "chaos replay {} … clean ({} ops, {} faults, {} degraded reads, \
                     {} fail-fasts)",
                    path.display(),
                    report.ops_run,
                    report.faults_fired,
                    report.degraded_reads,
                    report.fail_fast
                ),
                Err(f) => {
                    eprintln!(
                        "fuzz: chaos reproducer {} STILL FAILS: {f}\n      fix the bug (or \
                         remove the file once obsolete) to unblock CI",
                        path.display()
                    );
                    failures += 1;
                }
            },
        }
    }
    if failures > 0 {
        return ExitCode::FAILURE;
    }
    let cases = if smoke() { 3 } else { args.cases.max(8) } as u64;
    let started = std::time::Instant::now();
    for i in 0..cases {
        let spec = ChaosSpec::smoke(args.seed + i);
        let case = generate_chaos(&spec);
        match run_chaos(&case) {
            Ok(report) => println!(
                "chaos seed {} … clean ({} ops, {} faults, {} degraded reads, {} fail-fasts)",
                spec.seed,
                report.ops_run,
                report.faults_fired,
                report.degraded_reads,
                report.fail_fast
            ),
            Err(failure) => {
                eprintln!("chaos seed {}: FAILURE {failure}", spec.seed);
                eprintln!("chaos seed {}: shrinking …", spec.seed);
                let outcome = shrink_chaos(&case, 200);
                eprintln!(
                    "chaos seed {}: shrunk {} → {} steps in {} executions: {}",
                    spec.seed,
                    case.steps.len(),
                    outcome.case.steps.len(),
                    outcome.executions,
                    outcome.failure
                );
                match write_chaos_reproducer(&dir, &outcome.case, Some(&outcome.failure)) {
                    Ok(path) => eprintln!(
                        "chaos seed {}: reproducer written to {}",
                        spec.seed,
                        path.display()
                    ),
                    Err(e) => eprintln!("chaos seed {}: cannot write reproducer: {e}", spec.seed),
                }
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "chaos: {cases} cases, no failure ({:.1?})",
        started.elapsed()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fuzz: {e}");
            return ExitCode::from(2);
        }
    };
    // ---- codec pass ---------------------------------------------------
    if args.codec {
        // Standalone wire-codec fuzzing (the CI `net-smoke` budget when
        // VORONET_SMOKE=1): panics with a shrunk frame on failure.
        let cases = if smoke() { 256 } else { 2_048 } as u64;
        voronet_testkit::run_codec_pass(cases, args.seed);
        println!(
            "codec pass clean ({cases} cases per property from seed {})",
            args.seed
        );
        return ExitCode::SUCCESS;
    }

    // ---- chaos pass ---------------------------------------------------
    if args.chaos {
        return run_chaos_pass(&args);
    }

    let fault = if args.demo_fault {
        Fault::FrozenRouteExtraHop
    } else {
        Fault::None
    };

    // ---- replay phase -------------------------------------------------
    let mut replay_files = args.replay.clone();
    if args.replay_dir {
        replay_files.extend(list_reproducers(&args.out));
    }
    replay_files.sort();
    replay_files.dedup();
    let mut failures = 0usize;
    for path in &replay_files {
        match read_reproducer(path) {
            Err(e) => {
                eprintln!("fuzz: {}: {e}", path.display());
                failures += 1;
            }
            // Committed reproducers document *fixed* bugs: they must
            // replay clean on the faithful executions, so the planted
            // --demo-fault defect never applies here (it would falsely
            // flag any reproducer containing a multi-hop route).
            Ok(case) => match run_case(&case, Fault::None) {
                Ok(report) => println!(
                    "replay {} … clean ({} ops, {} rounds)",
                    path.display(),
                    report.ops_run,
                    report.rounds
                ),
                Err(d) => {
                    eprintln!(
                        "fuzz: reproducer {} STILL DIVERGES: {d}\n      fix the bug (or remove \
                         the file once obsolete) to unblock CI",
                        path.display()
                    );
                    failures += 1;
                }
            },
        }
    }
    if failures > 0 {
        return ExitCode::FAILURE;
    }

    // ---- fuzz phase ---------------------------------------------------
    let mut specs: Vec<FuzzSpec> = Vec::new();
    if args.cases > 0 {
        // The acceptance case: one deep 10k-op script on the base seed.
        let deep = FuzzSpec {
            warmup: args.warmup.max(100),
            threads: args.threads,
            services: args.services,
            ..FuzzSpec::deep(args.seed)
        };
        specs.push(match args.ops {
            Some(ops) => FuzzSpec { ops, ..deep },
            None => deep,
        });
    }
    // Smaller mixed cases on successor seeds.
    for i in 1..args.cases as u64 {
        let mut spec = FuzzSpec::smoke(args.seed + i);
        spec.warmup = args.warmup.min(48);
        spec.threads = args.threads;
        spec.services = args.services;
        if let Some(ops) = args.ops {
            spec.ops = ops.min(600);
        }
        specs.push(spec);
    }

    let mut total_ops = 0usize;
    let started = std::time::Instant::now();
    for spec in &specs {
        let case = generate_case(spec);
        if let Some(path) = &args.dump_ops {
            if let Err(e) = dump_resolved_ops(&case, path) {
                eprintln!("fuzz: --dump-ops {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
        match run_case(&case, fault) {
            Ok(report) => {
                total_ops += report.ops_run;
                println!(
                    "seed {} … clean ({} ops, {} rounds, population {}, lossy lost {}, \
                     {} invariant node-checks)",
                    spec.seed,
                    report.ops_run,
                    report.rounds,
                    report.population,
                    report.lossy_lost,
                    report.invariants_checked
                );
            }
            Err(divergence) => {
                eprintln!("seed {}: DIVERGENCE {divergence}", spec.seed);
                eprintln!("seed {}: shrinking …", spec.seed);
                let outcome = shrink_case(&case, fault, 2_000);
                eprintln!(
                    "seed {}: shrunk {} → {} ops in {} executions: {}",
                    spec.seed,
                    case.script.len(),
                    outcome.case.script.len(),
                    outcome.executions,
                    outcome.divergence
                );
                if args.demo_fault {
                    // Self-test mode: catching and shrinking the planted
                    // fault is the *expected* outcome.
                    println!(
                        "demo-fault: planted defect caught and shrunk to {} ops — pipeline OK",
                        outcome.case.script.len()
                    );
                    return if outcome.case.script.len() <= 20 {
                        ExitCode::SUCCESS
                    } else {
                        eprintln!("demo-fault: reproducer larger than the 20-op acceptance bound");
                        ExitCode::FAILURE
                    };
                }
                match write_reproducer(&args.out, &outcome.case, Some(&outcome.divergence)) {
                    Ok(path) => eprintln!(
                        "seed {}: reproducer written to {}",
                        spec.seed,
                        path.display()
                    ),
                    Err(e) => eprintln!("seed {}: cannot write reproducer: {e}", spec.seed),
                }
                return ExitCode::FAILURE;
            }
        }
    }
    if args.demo_fault {
        eprintln!("demo-fault: the planted defect was NOT detected — the checker is broken");
        return ExitCode::FAILURE;
    }
    println!(
        "fuzz: {} cases, {total_ops} ops, no divergence ({:.1?})",
        specs.len(),
        started.elapsed()
    );
    ExitCode::SUCCESS
}
