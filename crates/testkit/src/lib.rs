//! # voronet-testkit
//!
//! The differential oracle testkit: model-based fuzzing of every VoroNet
//! execution engine, with shrinking, replayable reproducers.
//!
//! The workspace carries four implementations of the same protocol
//! semantics — the live [`VoroNet`](voronet_core::VoroNet) walk, the
//! [`FrozenView`](voronet_core::FrozenView) CSR snapshot, the threaded
//! `SyncEngine::apply_batch` read path and the message-driven
//! [`AsyncOverlay`](voronet_core::runtime::AsyncOverlay) runtime.  This
//! crate pins them to each other and to a naive O(n²) reference model:
//!
//! * [`oracle`] — the brute-force [`oracle::OracleModel`]
//!   that predicts every op result from first principles;
//! * [`grammar`] — seeded generation of [`grammar::FuzzCase`]s
//!   from a weighted op grammar (built on
//!   [`OpMix`](voronet_workloads::OpMix)), including network-event
//!   profiles (loss, latency shifts, partition windows);
//! * [`harness`] — [`harness::run_case`], the five-way
//!   differential executor;
//! * [`frozen`] — the frozen-snapshot execution plus deliberate
//!   [`frozen::Fault`] injection for self-testing the checker;
//! * [`shrink`] — ddmin-style script minimisation of diverging cases;
//! * [`repro`] — `.ron`-style reproducer files under
//!   `tests/reproducers/`, written on divergence and replayed by CI;
//! * [`prop`] — the seeded property-check harness (with input
//!   shrinking) behind the workspace's property tests;
//! * [`codec`] — property fuzzing of the `voronet-net` wire codec
//!   (round-trip canonicality, truncation/corruption totality), run by
//!   the fuzz binary's `--codec` pass;
//! * [`chaos`] — seeded crash/partition fuzzing of the fault-tolerant
//!   cluster: replayable timelines of workload ops and fault events,
//!   a no-acked-write-lost/no-livelock oracle, ddmin shrinking and
//!   `.ron` reproducers under `tests/chaos/`, run by the fuzz binary's
//!   `--chaos` pass.
//!
//! The `fuzz` binary (`cargo run -p voronet-testkit --bin fuzz`) drives
//! all of it from the command line; `VORONET_SMOKE=1` selects the
//! CI-sized budget.

#![warn(missing_docs)]

pub mod chaos;
pub mod codec;
pub mod frozen;
pub mod grammar;
pub mod harness;
pub mod oracle;
pub mod prop;
pub mod repro;
pub mod shrink;

pub use chaos::{
    generate_chaos, parse_chaos_case, read_chaos_reproducer, run_chaos, shrink_chaos,
    write_chaos_reproducer, ChaosCase, ChaosFailure, ChaosReport, ChaosSpec, ChaosStep,
};
pub use codec::{
    check_corruption, check_roundtrip, check_truncations, random_frame, run_codec_pass,
};
pub use frozen::{Fault, FrozenReplay};
pub use grammar::{generate_case, FuzzCase, FuzzSpec, NetProfile};
pub use harness::{run_case, Divergence, RunReport};
pub use oracle::OracleModel;
pub use prop::{check_cases, ShrinkInput};
pub use repro::{
    encode_case, list_reproducers, parse_case, read_reproducer, write_reproducer, ReproError,
};
pub use shrink::{shrink_case, ShrinkOutcome};
