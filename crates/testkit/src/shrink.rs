//! Delta-debugging shrinker for diverging fuzz cases.
//!
//! Scripts are sequences of index-named
//! [`WorkloadOp`](voronet_workloads::WorkloadOp)s, so *any*
//! subsequence is still executable (participant indices are taken modulo
//! the live population and resolution drops ops the state cannot
//! support).  That makes classic ddmin applicable without repair logic:
//! repeatedly try removing chunks of the script — halves first, then
//! smaller windows, down to single ops — and keep every removal after
//! which [`run_case`] still reports *a*
//! divergence.  The reproducer keeps the final (usually much smaller)
//! script plus the divergence it still triggers.

use crate::frozen::Fault;
use crate::grammar::FuzzCase;
use crate::harness::{run_case, Divergence};

/// The result of shrinking a diverging case.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimised case (still diverging).
    pub case: FuzzCase,
    /// The divergence the minimised case triggers.
    pub divergence: Divergence,
    /// Harness executions spent shrinking.
    pub executions: usize,
}

/// Minimises `case` (known to diverge under `fault`) with at most
/// `max_executions` re-runs of the harness.  The returned case always
/// still diverges; if the budget runs out the partially shrunk case is
/// returned.
pub fn shrink_case(case: &FuzzCase, fault: Fault, max_executions: usize) -> ShrinkOutcome {
    let mut divergence =
        run_case(case, fault).expect_err("shrink_case requires a case that diverges");
    let mut current = case.clone();
    let mut executions = 1usize;

    // Outer loop: sweep windows from half the current script down to
    // single ops; once a whole sweep removes nothing, the script is
    // 1-minimal with respect to chunk removal.
    loop {
        let before = current.script.len();
        let mut window = (current.script.len() / 2).max(1);
        loop {
            let mut start = 0;
            while start < current.script.len() && executions < max_executions {
                let end = (start + window).min(current.script.len());
                let mut candidate = current.clone();
                candidate.script.drain(start..end);
                executions += 1;
                match run_case(&candidate, fault) {
                    Err(d) => {
                        // The removal preserved a divergence: keep it and
                        // stay at the same position (the next window slid
                        // into it).
                        current = candidate;
                        divergence = d;
                    }
                    Ok(_) => start = end,
                }
            }
            if window == 1 || executions >= max_executions {
                break;
            }
            window = (window / 2).max(1);
        }
        if executions >= max_executions {
            break;
        }
        if current.script.len() == before {
            // Chunk removal reached a fixpoint.  Participant indices
            // resolve once per round, so an op can depend on *where the
            // round boundaries fall* (a route is only executable in a
            // round after the inserts it needs) — shrinking the round
            // size to 1 makes resolution per-op and unlocks further
            // removals.
            let mut reduced_round = false;
            let mut r = current.round / 2;
            while r >= 1 && executions < max_executions {
                let mut candidate = current.clone();
                candidate.round = r;
                executions += 1;
                if let Err(d) = run_case(&candidate, fault) {
                    current = candidate;
                    divergence = d;
                    reduced_round = true;
                    break;
                }
                r /= 2;
            }
            if !reduced_round {
                break;
            }
        }
    }

    ShrinkOutcome {
        case: current,
        divergence,
        executions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::{generate_case, FuzzSpec};

    /// The acceptance self-test: a wrong hop planted in the frozen
    /// execution is caught by the differential checker and shrunk to a
    /// reproducer of at most 20 ops.
    #[test]
    fn planted_frozen_fault_shrinks_to_a_tiny_reproducer() {
        let case = generate_case(&FuzzSpec {
            warmup: 16,
            ops: 160,
            lossy: false,
            ..FuzzSpec::smoke(2027)
        });
        let outcome = shrink_case(&case, Fault::FrozenRouteExtraHop, 2_000);
        assert!(
            outcome.case.script.len() <= 20,
            "shrunk script still has {} ops: {:?}",
            outcome.case.script.len(),
            outcome.case.script
        );
        assert!(outcome.case.script.len() >= 2, "needs at least two objects");
        // The minimised case still reproduces the same class of bug.
        let d = run_case(&outcome.case, Fault::FrozenRouteExtraHop)
            .expect_err("minimised case must still diverge");
        assert_eq!(d.kind, "result:frozen", "{d}");
        // … and is clean without the fault.
        run_case(&outcome.case, Fault::None)
            .unwrap_or_else(|d| panic!("fault-free replay must be clean, got {d}"));
    }
}
