//! Seeded property checking with input shrinking — the light-weight
//! harness behind the workspace's hand-rolled property tests.
//!
//! [`check_cases`] replaces the bare `for case in 0..N { … }` loops: it
//! derives one RNG per case from a base seed, runs the property (a
//! closure returning `Err(diagnostic)` on failure — see
//! [`tk_ensure!`](crate::tk_ensure)),
//! and on failure greedily shrinks the generated input before panicking
//! with the **seed, case number, shrunk input and diagnostic** — so every
//! failure is reproducible and minimal by construction.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Inputs the harness knows how to shrink.  `candidates` returns reduced
/// variants to try, most aggressive first; shrinking greedily walks to
/// the first still-failing candidate until a fixpoint.
pub trait ShrinkInput: Clone {
    /// Reduced variants of `self`, most aggressive first.
    fn candidates(&self) -> Vec<Self>;
}

impl<T: Clone> ShrinkInput for Vec<T> {
    fn candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let n = self.len();
        if n == 0 {
            return out;
        }
        // Drop halves, then quarters, then single elements.
        let mut window = (n / 2).max(1);
        loop {
            let mut start = 0;
            while start < n {
                let end = (start + window).min(n);
                let mut candidate = self.clone();
                candidate.drain(start..end);
                out.push(candidate);
                start = end;
            }
            if window == 1 {
                break;
            }
            window = (window / 2).max(1);
        }
        out
    }
}

/// Pairs shrink their first component and carry the second along (e.g. a
/// point set plus a fixed query point).
impl<A: ShrinkInput, B: Clone> ShrinkInput for (A, B) {
    fn candidates(&self) -> Vec<Self> {
        self.0
            .candidates()
            .into_iter()
            .map(|a| (a, self.1.clone()))
            .collect()
    }
}

/// Triples shrink their first component like pairs do (a seed or a work
/// list plus two fixed parameters).
impl<A: ShrinkInput, B: Clone, C: Clone> ShrinkInput for (A, B, C) {
    fn candidates(&self) -> Vec<Self> {
        self.0
            .candidates()
            .into_iter()
            .map(|a| (a, self.1.clone(), self.2.clone()))
            .collect()
    }
}

/// Scalars are atomic: a seed or a size parameter has no meaningful
/// reduced form — "shrinking" it would swap in an unrelated case rather
/// than minimise the witness — so properties over them report the
/// failing value as-is.
macro_rules! atomic_shrink_input {
    ($($t:ty),* $(,)?) => {
        $(impl ShrinkInput for $t {
            fn candidates(&self) -> Vec<Self> {
                Vec::new()
            }
        })*
    };
}
atomic_shrink_input!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

fn shrink<T: ShrinkInput>(
    input: T,
    message: String,
    test: impl Fn(&T) -> Result<(), String>,
    budget: usize,
) -> (T, String, usize) {
    let mut current = input;
    let mut current_msg = message;
    let mut spent = 0usize;
    loop {
        let mut reduced = false;
        for candidate in current.candidates() {
            if spent >= budget {
                return (current, current_msg, spent);
            }
            spent += 1;
            if let Err(msg) = run_property(&test, &candidate) {
                current = candidate;
                current_msg = msg;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return (current, current_msg, spent);
        }
    }
}

/// Runs the property once, converting a panic inside it into an ordinary
/// failure diagnostic — so `.unwrap()`s and `assert!`s in property code
/// still get seed/case context attached and still shrink, instead of
/// unwinding straight past the harness.
fn run_property<T>(test: &impl Fn(&T) -> Result<(), String>, input: &T) -> Result<(), String> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(input))) {
        Ok(outcome) => outcome,
        Err(payload) => Err(if let Some(s) = payload.downcast_ref::<&str>() {
            format!("property panicked: {s}")
        } else if let Some(s) = payload.downcast_ref::<String>() {
            format!("property panicked: {s}")
        } else {
            "property panicked with a non-string payload".to_string()
        }),
    }
}

/// Runs `cases` seeded cases of a property.  Each case derives its RNG
/// from `base_seed + case`; on failure — a returned `Err` *or* a panic
/// inside the property — the input is shrunk (up to 512 property
/// re-runs) and the final panic message carries the seed, the case
/// number, the shrunk input and the diagnostic.
pub fn check_cases<T, G, F>(name: &str, cases: u64, base_seed: u64, mut generate: G, test: F)
where
    T: ShrinkInput + std::fmt::Debug,
    G: FnMut(&mut StdRng) -> T,
    F: Fn(&T) -> Result<(), String>,
{
    for case in 0..cases {
        let seed = base_seed.wrapping_add(case);
        let mut rng = StdRng::seed_from_u64(seed);
        let input = generate(&mut rng);
        if let Err(message) = run_property(&test, &input) {
            let (min_input, min_message, steps) = shrink(input, message, &test, 512);
            panic!(
                "property `{name}` failed at seed {seed} (case {case} of {cases}, base seed \
                 {base_seed}):\n  {min_message}\n  shrunk input after {steps} shrink runs: \
                 {min_input:?}\n  replay: StdRng::seed_from_u64({seed})"
            );
        }
    }
}

/// `tk_ensure!(cond, "format", args…)` — the property-test analogue of
/// `assert!`: returns `Err(formatted)` from the enclosing
/// `Result<(), String>` closure instead of panicking, so
/// [`check_cases`] can shrink the input before reporting.
#[macro_export]
macro_rules! tk_ensure {
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err(format!($($arg)+));
        }
    };
}

/// `tk_ensure_eq!(a, b, "context", args…)` — equality form of
/// [`tk_ensure!`](crate::tk_ensure), printing both sides on failure.
#[macro_export]
macro_rules! tk_ensure_eq {
    ($left:expr, $right:expr, $($arg:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{}: left {:?} != right {:?}",
                format!($($arg)+),
                l,
                r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_properties_run_all_cases() {
        let ran = std::cell::Cell::new(0u64);
        check_cases(
            "always-passes",
            16,
            7,
            |rng| {
                use rand::RngExt;
                (0..rng.random_range(1..10usize))
                    .map(|_| rng.random::<u32>())
                    .collect::<Vec<u32>>()
            },
            |_| {
                ran.set(ran.get() + 1);
                Ok(())
            },
        );
        assert_eq!(ran.get(), 16);
    }

    #[test]
    fn failures_shrink_to_the_minimal_witness() {
        // Property: "no vector contains a multiple of 97".  The witness
        // must shrink to exactly one offending element.
        let result = std::panic::catch_unwind(|| {
            check_cases(
                "no-multiples-of-97",
                64,
                1,
                |rng| {
                    use rand::RngExt;
                    (0..rng.random_range(5..40usize))
                        .map(|_| rng.random_range(0..500u32))
                        .collect::<Vec<u32>>()
                },
                |xs| {
                    if let Some(x) = xs.iter().find(|&&x| x % 97 == 0) {
                        return Err(format!("found {x}"));
                    }
                    Ok(())
                },
            )
        });
        let message = match result {
            Ok(()) => panic!("a multiple of 97 must appear within 64 seeded cases"),
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .expect("panic carries a String"),
        };
        assert!(message.contains("seed"), "{message}");
        assert!(message.contains("shrunk input"), "{message}");
        // The shrunk witness is a single-element vector.
        let witness = message
            .split("shrink runs: ")
            .nth(1)
            .and_then(|s| s.split('\n').next())
            .expect("message names the witness");
        let elements = witness.matches(',').count();
        assert_eq!(
            elements, 0,
            "witness should shrink to one element, got {witness}"
        );
    }

    #[test]
    fn panics_inside_the_property_still_get_seed_context_and_shrink() {
        let result = std::panic::catch_unwind(|| {
            check_cases(
                "no-multiples-of-101-via-panic",
                64,
                3,
                |rng| {
                    use rand::RngExt;
                    (0..rng.random_range(5..40usize))
                        .map(|_| rng.random_range(0..500u32))
                        .collect::<Vec<u32>>()
                },
                |xs| {
                    // A property written with a bare panic instead of Err.
                    if let Some(x) = xs.iter().find(|&&x| x % 101 == 0) {
                        panic!("found {x}");
                    }
                    Ok(())
                },
            )
        });
        let message = match result {
            Ok(()) => panic!("a multiple of 101 must appear within 64 seeded cases"),
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .expect("harness panic carries a String"),
        };
        assert!(message.contains("seed"), "{message}");
        assert!(message.contains("property panicked: found"), "{message}");
        assert!(message.contains("shrunk input"), "{message}");
    }

    #[test]
    fn vec_candidates_cover_halves_and_single_elements() {
        let v: Vec<u32> = (0..8).collect();
        let cands = v.candidates();
        assert!(cands.iter().any(|c| c.len() == 4), "halves");
        assert!(
            cands.iter().any(|c| c.len() == 7),
            "single-element removals"
        );
        assert!(cands.iter().all(|c| c.len() < v.len()));
        assert!(Vec::<u32>::new().candidates().is_empty());
    }
}
