//! Backend-agnostic operation scripts for batched overlay workloads.
//!
//! The overlay API layer (`voronet-api`) submits work as typed batches of
//! operations.  This module generates the *scripts* for those batches
//! without naming any engine type: participants are referred to by **dense
//! population index** (the `idx < len()` sampling order every overlay
//! exposes), and positions/queries come from the same seeded generators
//! that drive the paper experiments.  The API layer resolves the indices
//! against a concrete engine at submission time.

use crate::distribution::{Distribution, PointGenerator, ZipfSampler};
use crate::queries::{QueryGenerator, RadiusQuery, RangeQuery};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use voronet_geom::{Point2, Rect};

/// One scripted overlay operation with participants named by dense
/// population index (resolved to object ids by the submitting layer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadOp {
    /// Publish a new object at `position`.
    Insert {
        /// Attribute coordinates of the new object.
        position: Point2,
    },
    /// Remove the `index`-th live object (modulo the live population).
    Remove {
        /// Dense population index of the departing object.
        index: usize,
    },
    /// Route from the `from`-th live object to the `to`-th (indices taken
    /// modulo the live population; a degenerate self-route is allowed and
    /// resolves in zero hops).
    Route {
        /// Dense population index of the source object.
        from: usize,
        /// Dense population index of the destination object.
        to: usize,
    },
    /// Rectangular range query issued by the `from`-th live object.
    Range {
        /// Dense population index of the issuing object.
        from: usize,
        /// The queried rectangle.
        query: RangeQuery,
    },
    /// Radius (disk) query issued by the `from`-th live object.
    Radius {
        /// Dense population index of the issuing object.
        from: usize,
        /// The queried disk.
        query: RadiusQuery,
    },
    /// Capture the complete view snapshot of the `index`-th live object.
    Snapshot {
        /// Dense population index of the inspected object.
        index: usize,
    },
    /// Subscribe the `index`-th live object to publishes intersecting
    /// `region`.
    Subscribe {
        /// Dense population index of the subscriber.
        index: usize,
        /// The spatial region of interest — the topic.
        region: Rect,
    },
    /// Drop the `index`-th live object's subscription.
    Unsubscribe {
        /// Dense population index of the unsubscribing object.
        index: usize,
    },
    /// Publish `payload` into `region`, issued by the `from`-th live
    /// object.
    Publish {
        /// Dense population index of the publisher.
        from: usize,
        /// The target region — the topic.
        region: Rect,
        /// Opaque payload token.
        payload: u64,
    },
    /// Store `value` under `key`, issued by the `from`-th live object.
    KvPut {
        /// Dense population index of the requesting object.
        from: usize,
        /// The key (hashes to a coordinate at the service layer).
        key: u64,
        /// The value token.
        value: u64,
    },
    /// Look `key` up, issued by the `from`-th live object.
    KvGet {
        /// Dense population index of the requesting object.
        from: usize,
        /// The key to resolve.
        key: u64,
    },
    /// Delete `key`, issued by the `from`-th live object.
    KvDelete {
        /// Dense population index of the requesting object.
        from: usize,
        /// The key to delete.
        key: u64,
    },
}

/// Relative frequencies of the operation families in a generated batch.
/// The weights need not sum to 1 — they are normalised; families with
/// weight 0 never appear.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Weight of [`WorkloadOp::Insert`].
    pub insert: f64,
    /// Weight of [`WorkloadOp::Remove`].
    pub remove: f64,
    /// Weight of [`WorkloadOp::Route`].
    pub route: f64,
    /// Weight of [`WorkloadOp::Range`].
    pub range: f64,
    /// Weight of [`WorkloadOp::Radius`].
    pub radius: f64,
    /// Weight of [`WorkloadOp::Snapshot`].
    pub snapshot: f64,
    /// Weight of [`WorkloadOp::Subscribe`].
    pub subscribe: f64,
    /// Weight of [`WorkloadOp::Unsubscribe`].
    pub unsubscribe: f64,
    /// Weight of [`WorkloadOp::Publish`].
    pub publish: f64,
    /// Weight of [`WorkloadOp::KvPut`].
    pub kv_put: f64,
    /// Weight of [`WorkloadOp::KvGet`].
    pub kv_get: f64,
    /// Weight of [`WorkloadOp::KvDelete`].
    pub kv_delete: f64,
}

impl OpMix {
    /// A read-mostly mix: 80% routes, 10% inserts, 5% removals, 5% area
    /// queries — the shape of a query-serving deployment.
    pub fn read_heavy() -> Self {
        OpMix {
            insert: 0.10,
            remove: 0.05,
            route: 0.80,
            range: 0.025,
            radius: 0.025,
            ..Self::zero()
        }
    }

    /// A churn-heavy mix: 35% inserts, 25% removals, 40% routes.
    pub fn churn_heavy() -> Self {
        OpMix {
            insert: 0.35,
            remove: 0.25,
            route: 0.40,
            ..Self::zero()
        }
    }

    /// The deployment-stress mix of the `voronet-node` demo: heavy churn
    /// (30% inserts, 20% removals) under a routed read load (40% routes,
    /// 10% area queries).  Pair it with
    /// [`OpBatchGenerator::with_zipf_destinations`] so the routed traffic
    /// concentrates on a few popular objects, the access pattern the
    /// paper's load-balancing analysis assumes (Section 5).
    pub fn churn_zipf() -> Self {
        OpMix {
            insert: 0.30,
            remove: 0.20,
            route: 0.40,
            range: 0.05,
            radius: 0.05,
            ..Self::zero()
        }
    }

    /// Reads only: 90% routes, 10% area queries, no churn.  Batches drawn
    /// from this mix contain no write barrier, so an engine with a
    /// parallel read path executes the whole batch as one frozen-snapshot
    /// run.
    pub fn read_only() -> Self {
        OpMix {
            route: 0.90,
            range: 0.05,
            radius: 0.05,
            ..Self::zero()
        }
    }

    /// A read/write mix parameterised by read percentage: `read_pct`% of
    /// the ops are routes, the rest is churn split evenly between inserts
    /// and removals.  `mixed(99)`, `mixed(95)` and `mixed(80)` are the
    /// canonical 99:1 / 95:5 / 80:20 traffic shapes used to measure how
    /// well an epoch-patched frozen read path holds up once writers start
    /// bumping the snapshot epoch between read runs.  Composable with
    /// [`OpBatchGenerator::with_zipf_destinations`] for skewed read
    /// traffic.  `read_pct` is clamped to `0..=100`.
    pub fn mixed(read_pct: u32) -> Self {
        let read = f64::from(read_pct.min(100)) / 100.0;
        let write = 1.0 - read;
        OpMix {
            insert: write / 2.0,
            remove: write / 2.0,
            route: read,
            ..Self::zero()
        }
    }

    /// Routes only (the Figure 6 measurement workload, in batch form).
    pub fn routes_only() -> Self {
        OpMix {
            route: 1.0,
            ..Self::zero()
        }
    }

    /// A service-centric mix: `pub_pct`% of the ops are pub/sub traffic
    /// (subscribes, occasional unsubscribes and a publish majority),
    /// `kv_pct`% are KV traffic (put/get/delete), and the remainder is
    /// routed read load with light churn — so service semantics are
    /// continuously exercised *under* membership change.  Percentages are
    /// clamped so the pair never exceeds 100.  Pair with
    /// [`OpBatchGenerator::with_zipf_topics`] to concentrate the publish
    /// traffic into a few hot regions (the flash-crowd shape).
    pub fn services(pub_pct: u32, kv_pct: u32) -> Self {
        let p = pub_pct.min(100);
        let k = kv_pct.min(100 - p);
        let p = f64::from(p) / 100.0;
        let k = f64::from(k) / 100.0;
        let rest = (1.0 - p - k).max(0.0);
        OpMix {
            insert: rest * 0.15,
            remove: rest * 0.10,
            route: rest * 0.75,
            subscribe: p * 0.22,
            unsubscribe: p * 0.03,
            publish: p * 0.75,
            kv_put: k * 0.40,
            kv_get: k * 0.45,
            kv_delete: k * 0.15,
            ..Self::zero()
        }
    }

    /// The all-zero mix, the base every preset builds on.
    fn zero() -> Self {
        OpMix {
            insert: 0.0,
            remove: 0.0,
            route: 0.0,
            range: 0.0,
            radius: 0.0,
            snapshot: 0.0,
            subscribe: 0.0,
            unsubscribe: 0.0,
            publish: 0.0,
            kv_put: 0.0,
            kv_get: 0.0,
            kv_delete: 0.0,
        }
    }

    fn total(&self) -> f64 {
        self.insert
            + self.remove
            + self.route
            + self.range
            + self.radius
            + self.snapshot
            + self.subscribe
            + self.unsubscribe
            + self.publish
            + self.kv_put
            + self.kv_get
            + self.kv_delete
    }
}

impl Default for OpMix {
    fn default() -> Self {
        OpMix::read_heavy()
    }
}

/// Seeded generator of [`WorkloadOp`] batches: insert positions follow an
/// object-placement [`Distribution`], queries come from a
/// [`QueryGenerator`], and the op sequence is drawn from an [`OpMix`] —
/// all deterministic for a given seed.
#[derive(Debug)]
pub struct OpBatchGenerator {
    mix: OpMix,
    rng: StdRng,
    points: PointGenerator,
    queries: QueryGenerator,
    /// Largest relative extent of generated range queries (fraction of the
    /// domain side).
    max_query_extent: f64,
    /// When set, route destinations are Zipf-skewed over population rank
    /// with this exponent instead of uniform.
    zipf_alpha: Option<f64>,
    /// When set, publish/subscribe regions are drawn from a small fixed
    /// palette of topic rectangles with Zipf-skewed rank (hot topics).
    topics: Option<f64>,
    /// Lazily built topic palette (shared by subscribes and publishes so
    /// hot publishes actually hit subscribed regions).
    topic_palette: Vec<Rect>,
    /// Cached destination-rank sampler, rebuilt only when the scripted
    /// population or exponent changes (separate from the topic slot so
    /// alternating draws don't thrash either cache).
    zipf_dest: Option<ZipfSampler>,
    /// Cached topic-rank sampler over the fixed palette.
    zipf_topic: Option<ZipfSampler>,
}

impl OpBatchGenerator {
    /// Creates a generator over the unit square.
    pub fn new(dist: Distribution, seed: u64, mix: OpMix) -> Self {
        Self::with_domain(dist, seed, mix, Rect::UNIT)
    }

    /// Creates a generator over an arbitrary domain.
    pub fn with_domain(dist: Distribution, seed: u64, mix: OpMix, domain: Rect) -> Self {
        OpBatchGenerator {
            mix,
            rng: StdRng::seed_from_u64(seed ^ 0x0B_A7C4),
            points: PointGenerator::with_domain(dist, seed ^ 0x9E37, domain),
            queries: QueryGenerator::with_domain(seed ^ 0xA3EA, domain),
            max_query_extent: 0.1,
            zipf_alpha: None,
            topics: None,
            topic_palette: Vec::new(),
            zipf_dest: None,
            zipf_topic: None,
        }
    }

    /// Sets the largest relative extent of generated range/radius queries.
    pub fn with_max_query_extent(mut self, extent: f64) -> Self {
        self.max_query_extent = extent.clamp(0.0, 1.0);
        self
    }

    /// Skews route destinations by a Zipf law over dense population rank:
    /// the `r`-th object is targeted with probability proportional to
    /// `1 / (r + 1)^alpha`.  With `alpha = 0` this degenerates to uniform;
    /// typical web-like skews use `alpha` around 0.8–1.2.  Self-routes are
    /// deflected to the next rank so a skewed pair still exercises the
    /// overlay.
    pub fn with_zipf_destinations(mut self, alpha: f64) -> Self {
        self.zipf_alpha = Some(alpha.max(0.0));
        self
    }

    /// Draws publish/subscribe regions from a fixed 16-rect topic palette
    /// with Zipf-skewed rank instead of fresh uniform rectangles: rank `r`
    /// is chosen with probability proportional to `1 / (r + 1)^alpha`, so
    /// most publishes concentrate into one hot region — the flash-crowd
    /// shape the paper's load analysis worries about.  Subscribes draw
    /// from the same palette, so hot publishes meet standing subscriptions.
    pub fn with_zipf_topics(mut self, alpha: f64) -> Self {
        self.topics = Some(alpha.max(0.0));
        self
    }

    /// Generates the next batch of `len` operations.
    ///
    /// `population` is the submitter's estimate of the live population when
    /// the batch will run; participant indices are drawn below
    /// `max(population, 1)` and the generator tracks the net insert/remove
    /// balance within the batch so later indices stay meaningful.  Mixes
    /// with removals never script the population below 2.
    pub fn batch(&mut self, population: usize, len: usize) -> Vec<WorkloadOp> {
        let total = self.mix.total();
        let mut pop = population.max(1);
        let mut ops = Vec::with_capacity(len);
        for _ in 0..len {
            let op = if total <= 0.0 {
                self.route_op(pop)
            } else {
                let u: f64 = self.rng.random::<f64>() * total;
                let after_insert = self.mix.insert;
                let after_remove = after_insert + self.mix.remove;
                let after_route = after_remove + self.mix.route;
                let after_range = after_route + self.mix.range;
                let after_radius = after_range + self.mix.radius;
                let after_snapshot = after_radius + self.mix.snapshot;
                let after_subscribe = after_snapshot + self.mix.subscribe;
                let after_unsubscribe = after_subscribe + self.mix.unsubscribe;
                let after_publish = after_unsubscribe + self.mix.publish;
                let after_kv_put = after_publish + self.mix.kv_put;
                let after_kv_get = after_kv_put + self.mix.kv_get;
                if u < after_insert {
                    pop += 1;
                    WorkloadOp::Insert {
                        position: self.points.next_point(),
                    }
                } else if u < after_remove && pop > 2 {
                    let index = self.rng.random_range(0..pop);
                    pop -= 1;
                    WorkloadOp::Remove { index }
                } else if u < after_route || pop < 2 {
                    // Removal draws that hit the population floor also land
                    // here: a route is always executable.
                    self.route_op(pop)
                } else if u < after_range {
                    WorkloadOp::Range {
                        from: self.rng.random_range(0..pop),
                        query: self.queries.range_query(self.max_query_extent),
                    }
                } else if u < after_radius {
                    WorkloadOp::Radius {
                        from: self.rng.random_range(0..pop),
                        query: self.queries.radius_query(self.max_query_extent),
                    }
                } else if u < after_snapshot {
                    WorkloadOp::Snapshot {
                        index: self.rng.random_range(0..pop),
                    }
                } else if u < after_subscribe {
                    WorkloadOp::Subscribe {
                        index: self.rng.random_range(0..pop),
                        region: self.service_region(),
                    }
                } else if u < after_unsubscribe {
                    WorkloadOp::Unsubscribe {
                        index: self.rng.random_range(0..pop),
                    }
                } else if u < after_publish {
                    WorkloadOp::Publish {
                        from: self.rng.random_range(0..pop),
                        region: self.service_region(),
                        payload: self.rng.random_range(0..1_000_000u64),
                    }
                } else if u < after_kv_put {
                    WorkloadOp::KvPut {
                        from: self.rng.random_range(0..pop),
                        // Small keyspace on purpose: collisions make gets
                        // observe earlier puts and deletes actually land.
                        key: self.rng.random_range(0..64u64),
                        value: self.rng.random_range(0..1_000_000u64),
                    }
                } else if u < after_kv_get {
                    WorkloadOp::KvGet {
                        from: self.rng.random_range(0..pop),
                        key: self.rng.random_range(0..64u64),
                    }
                } else {
                    WorkloadOp::KvDelete {
                        from: self.rng.random_range(0..pop),
                        key: self.rng.random_range(0..64u64),
                    }
                }
            };
            ops.push(op);
        }
        ops
    }

    fn route_op(&mut self, pop: usize) -> WorkloadOp {
        if pop < 2 {
            return WorkloadOp::Route { from: 0, to: 0 };
        }
        match self.zipf_alpha {
            None => {
                let (from, to) = self.queries.object_pair(pop);
                WorkloadOp::Route { from, to }
            }
            Some(alpha) => {
                let from = self.rng.random_range(0..pop);
                let mut to = Self::zipf_rank(&mut self.rng, &mut self.zipf_dest, pop, alpha);
                if to == from {
                    to = (to + 1) % pop;
                }
                WorkloadOp::Route { from, to }
            }
        }
    }

    /// Draws the region for a subscribe/publish op: a fresh rectangle per
    /// op by default, or a Zipf-ranked pick from the lazily built 16-rect
    /// topic palette once [`with_zipf_topics`](Self::with_zipf_topics) is
    /// set.
    fn service_region(&mut self) -> Rect {
        match self.topics {
            None => self.queries.range_query(self.max_query_extent).rect,
            Some(alpha) => {
                if self.topic_palette.is_empty() {
                    self.topic_palette = (0..16)
                        .map(|_| self.queries.range_query(self.max_query_extent).rect)
                        .collect();
                }
                let rank = Self::zipf_rank(
                    &mut self.rng,
                    &mut self.zipf_topic,
                    self.topic_palette.len(),
                    alpha,
                );
                self.topic_palette[rank]
            }
        }
    }

    /// Draws a rank with probability proportional to `1 / (rank + 1)^alpha`
    /// through the cached [`ZipfSampler`] in `slot`: one uniform variate
    /// plus a binary search per draw, with the CDF rebuilt only when the
    /// population or exponent actually changes.
    fn zipf_rank(
        rng: &mut StdRng,
        slot: &mut Option<ZipfSampler>,
        pop: usize,
        alpha: f64,
    ) -> usize {
        let pop = pop.max(1);
        if !slot
            .as_ref()
            .is_some_and(|s| s.len() == pop && s.alpha() == alpha)
        {
            *slot = Some(ZipfSampler::new(pop, alpha));
        }
        let u: f64 = rng.random();
        slot.as_ref().expect("just built").rank_of(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_are_deterministic() {
        let mut a = OpBatchGenerator::new(Distribution::Uniform, 9, OpMix::default());
        let mut b = OpBatchGenerator::new(Distribution::Uniform, 9, OpMix::default());
        assert_eq!(a.batch(100, 200), b.batch(100, 200));
    }

    #[test]
    fn mix_weights_shape_the_batch() {
        let mut g = OpBatchGenerator::new(Distribution::Uniform, 3, OpMix::routes_only());
        let batch = g.batch(50, 500);
        assert!(batch
            .iter()
            .all(|op| matches!(op, WorkloadOp::Route { .. })));

        let mut g = OpBatchGenerator::new(Distribution::Uniform, 3, OpMix::read_heavy());
        let batch = g.batch(50, 2_000);
        let routes = batch
            .iter()
            .filter(|op| matches!(op, WorkloadOp::Route { .. }))
            .count();
        let inserts = batch
            .iter()
            .filter(|op| matches!(op, WorkloadOp::Insert { .. }))
            .count();
        assert!((1_400..=1_800).contains(&routes), "routes {routes}");
        assert!((100..=300).contains(&inserts), "inserts {inserts}");
    }

    #[test]
    fn zipf_destinations_concentrate_on_low_ranks() {
        let mut g = OpBatchGenerator::new(Distribution::Uniform, 5, OpMix::routes_only())
            .with_zipf_destinations(1.0);
        let pop = 100;
        let batch = g.batch(pop, 4_000);
        let mut hits = vec![0usize; pop];
        let mut self_routes = 0usize;
        for op in &batch {
            if let WorkloadOp::Route { from, to } = *op {
                hits[to] += 1;
                if from == to {
                    self_routes += 1;
                }
            }
        }
        assert_eq!(self_routes, 0, "self-routes are deflected");
        let head: usize = hits[..10].iter().sum();
        let tail: usize = hits[90..].iter().sum();
        // With alpha=1 over 100 ranks the top decile carries ~56% of the
        // mass and the bottom decile ~2%; leave wide sampling slack.
        assert!(head > 10 * tail, "head {head} tail {tail}");
        // Determinism holds with the skew enabled.
        let mut g2 = OpBatchGenerator::new(Distribution::Uniform, 5, OpMix::routes_only())
            .with_zipf_destinations(1.0);
        assert_eq!(batch, g2.batch(pop, 4_000));
    }

    #[test]
    fn churn_zipf_mix_scripts_heavy_churn() {
        let mut g = OpBatchGenerator::new(Distribution::Uniform, 11, OpMix::churn_zipf())
            .with_zipf_destinations(1.0);
        let batch = g.batch(200, 2_000);
        let inserts = batch
            .iter()
            .filter(|op| matches!(op, WorkloadOp::Insert { .. }))
            .count();
        let removes = batch
            .iter()
            .filter(|op| matches!(op, WorkloadOp::Remove { .. }))
            .count();
        assert!((450..=750).contains(&inserts), "inserts {inserts}");
        assert!((250..=550).contains(&removes), "removes {removes}");
    }

    #[test]
    fn read_only_mix_scripts_no_write_barrier() {
        let mut g = OpBatchGenerator::new(Distribution::Uniform, 3, OpMix::read_only());
        let batch = g.batch(50, 1_000);
        assert!(batch
            .iter()
            .all(|op| !matches!(op, WorkloadOp::Insert { .. } | WorkloadOp::Remove { .. })));
        let queries = batch
            .iter()
            .filter(|op| matches!(op, WorkloadOp::Range { .. } | WorkloadOp::Radius { .. }))
            .count();
        assert!((40..=180).contains(&queries), "queries {queries}");
    }

    #[test]
    fn participant_indices_track_the_scripted_population() {
        // A mix exercising every family keeps the index invariant honest.
        let mix = OpMix {
            range: 0.05,
            radius: 0.05,
            snapshot: 0.05,
            ..OpMix::services(30, 30)
        };
        let mut g = OpBatchGenerator::new(Distribution::Uniform, 7, mix);
        let mut pop = 20usize;
        for op in g.batch(pop, 1_000) {
            match op {
                WorkloadOp::Insert { .. } => pop += 1,
                WorkloadOp::Remove { index } => {
                    assert!(index < pop, "remove index {index} vs population {pop}");
                    pop -= 1;
                }
                WorkloadOp::Route { from, to } => {
                    assert!(from < pop && to < pop);
                }
                WorkloadOp::Range { from, .. }
                | WorkloadOp::Radius { from, .. }
                | WorkloadOp::Publish { from, .. }
                | WorkloadOp::KvPut { from, .. }
                | WorkloadOp::KvGet { from, .. }
                | WorkloadOp::KvDelete { from, .. } => {
                    assert!(from < pop);
                }
                WorkloadOp::Snapshot { index }
                | WorkloadOp::Subscribe { index, .. }
                | WorkloadOp::Unsubscribe { index } => {
                    assert!(index < pop);
                }
            }
            assert!(pop >= 2, "mix must not script the population below 2");
        }
    }

    #[test]
    fn mixed_presets_hit_their_read_write_ratios() {
        for (pct, lo, hi) in [
            (99u32, 1_900, 2_000),
            (95, 1_800, 1_960),
            (80, 1_480, 1_720),
        ] {
            let mut g = OpBatchGenerator::new(Distribution::Uniform, 23, OpMix::mixed(pct));
            let batch = g.batch(500, 2_000);
            let routes = batch
                .iter()
                .filter(|op| matches!(op, WorkloadOp::Route { .. }))
                .count();
            assert!(
                (lo..=hi).contains(&routes),
                "mixed({pct}): routes {routes} outside [{lo}, {hi}]"
            );
            let inserts = batch
                .iter()
                .filter(|op| matches!(op, WorkloadOp::Insert { .. }))
                .count();
            let removes = batch
                .iter()
                .filter(|op| matches!(op, WorkloadOp::Remove { .. }))
                .count();
            // Churn splits evenly and the extremes are clamped sanely.
            assert_eq!(routes + inserts + removes, 2_000, "no other families");
            let churn = inserts + removes;
            assert!(
                inserts.abs_diff(removes) * 4 <= churn.max(4),
                "mixed({pct}): churn split {inserts}/{removes}"
            );
        }
        // Degenerate ends: all reads / all writes, with clamping above 100.
        assert_eq!(OpMix::mixed(100), OpMix::mixed(250));
        assert_eq!(OpMix::mixed(100).route, 1.0);
        assert_eq!(OpMix::mixed(0).route, 0.0);
        // Composes with Zipf-skewed destinations deterministically.
        let mut a = OpBatchGenerator::new(Distribution::Uniform, 29, OpMix::mixed(95))
            .with_zipf_destinations(1.0);
        let mut b = OpBatchGenerator::new(Distribution::Uniform, 29, OpMix::mixed(95))
            .with_zipf_destinations(1.0);
        assert_eq!(a.batch(300, 1_000), b.batch(300, 1_000));
    }

    #[test]
    fn snapshot_weight_scripts_snapshots() {
        let mix = OpMix {
            snapshot: 0.5,
            ..OpMix::read_only()
        };
        let mut g = OpBatchGenerator::new(Distribution::Uniform, 17, mix);
        let batch = g.batch(50, 400);
        let snaps = batch
            .iter()
            .filter(|op| matches!(op, WorkloadOp::Snapshot { .. }))
            .count();
        assert!(
            (80..=220).contains(&snaps),
            "snapshot weight ~36% of the mix, got {snaps}/400"
        );
    }

    #[test]
    fn services_mix_scripts_service_traffic() {
        let mut g = OpBatchGenerator::new(Distribution::Uniform, 41, OpMix::services(40, 30));
        let batch = g.batch(100, 2_000);
        let count = |pred: fn(&WorkloadOp) -> bool| batch.iter().filter(|op| pred(op)).count();
        let publishes = count(|op| matches!(op, WorkloadOp::Publish { .. }));
        let subscribes = count(|op| matches!(op, WorkloadOp::Subscribe { .. }));
        let kv = count(|op| {
            matches!(
                op,
                WorkloadOp::KvPut { .. } | WorkloadOp::KvGet { .. } | WorkloadOp::KvDelete { .. }
            )
        });
        let routes = count(|op| matches!(op, WorkloadOp::Route { .. }));
        // 40% pub/sub → ~600 publishes, ~176 subscribes; 30% kv → ~600;
        // remainder is routed load with light churn.  Wide sampling slack.
        assert!((450..=750).contains(&publishes), "publishes {publishes}");
        assert!((100..=260).contains(&subscribes), "subscribes {subscribes}");
        assert!((450..=750).contains(&kv), "kv {kv}");
        assert!((300..=620).contains(&routes), "routes {routes}");
        // KV keys stay inside the small collision-friendly keyspace.
        for op in &batch {
            if let WorkloadOp::KvPut { key, .. }
            | WorkloadOp::KvGet { key, .. }
            | WorkloadOp::KvDelete { key, .. } = op
            {
                assert!(*key < 64);
            }
        }
        // Deterministic for a fixed seed.
        let mut g2 = OpBatchGenerator::new(Distribution::Uniform, 41, OpMix::services(40, 30));
        assert_eq!(batch, g2.batch(100, 2_000));
    }

    #[test]
    fn zipf_topics_concentrate_publishes() {
        let mut g = OpBatchGenerator::new(Distribution::Uniform, 13, OpMix::services(60, 0))
            .with_zipf_topics(1.2);
        let batch = g.batch(100, 3_000);
        let mut by_region: std::collections::HashMap<[u64; 4], usize> =
            std::collections::HashMap::new();
        let mut publishes = 0usize;
        for op in &batch {
            if let WorkloadOp::Publish { region, .. } = op {
                publishes += 1;
                let key = [
                    region.min.x.to_bits(),
                    region.min.y.to_bits(),
                    region.max.x.to_bits(),
                    region.max.y.to_bits(),
                ];
                *by_region.entry(key).or_default() += 1;
            }
        }
        assert!(publishes > 500, "publishes {publishes}");
        // The palette bounds the distinct topics, and the hot topic
        // carries far more than its uniform share (1/16 ≈ 6%).
        assert!(by_region.len() <= 16, "topics {}", by_region.len());
        let hottest = by_region.values().copied().max().unwrap();
        assert!(
            hottest * 4 > publishes,
            "hottest topic carries {hottest}/{publishes}"
        );
        // Deterministic with the skew enabled.
        let mut g2 = OpBatchGenerator::new(Distribution::Uniform, 13, OpMix::services(60, 0))
            .with_zipf_topics(1.2);
        assert_eq!(batch, g2.batch(100, 3_000));
    }

    #[test]
    fn tiny_population_degenerates_gracefully() {
        let mut g = OpBatchGenerator::new(Distribution::Uniform, 5, OpMix::routes_only());
        let batch = g.batch(1, 10);
        assert!(batch
            .iter()
            .all(|op| matches!(op, WorkloadOp::Route { from: 0, to: 0 })));
    }
}
