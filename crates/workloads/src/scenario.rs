//! Production-shaped traffic scenarios for the heavy-traffic suite.
//!
//! Every bench before this module drew uniform random pairs; real
//! deployments don't.  Each scenario here scripts a recognisable
//! production pathology as a plain [`WorkloadOp`] stream, so the same
//! generated traffic can be replayed against the sync walk, the frozen
//! parallel read path and the socketed cluster and their latency tails
//! compared honestly:
//!
//! - [`ScenarioKind::ZipfHotspot`] — web-shaped destination skew: route
//!   targets drawn Zipf(α = 1.1) over population rank, so a handful of
//!   objects absorb most of the traffic (the paper's Section 5 load
//!   model).
//! - [`ScenarioKind::FlashCrowd`] — a regional flash crowd: a burst of
//!   inserts lands inside one tiny rectangle (one Voronoi cell of the
//!   warm-up overlay) while all routed traffic targets the arrivals,
//!   stressing the N_max/split provisioning machinery.
//! - [`ScenarioKind::MassChurn`] — correlated churn, the partition-
//!   recovery shape: every object of a region departs back-to-back,
//!   routes continue among survivors, then the whole region rejoins.
//! - [`ScenarioKind::DegenerateGeometry`] — adversarial geometry: a
//!   near-cocircular + gridded warm-up overlay fed a near-collinear
//!   insert sweep, the placements that maximise Delaunay degeneracy.
//!
//! Participants are dense population indices with the engines' exact
//! swap-remove bookkeeping mirrored at generation time, so a scripted
//! `Remove { index }` provably hits an in-region object and flash-crowd
//! routes provably target crowd members.  Everything is deterministic
//! per seed.

use crate::distribution::{Distribution, PointGenerator, ZipfSampler};
use crate::ops::WorkloadOp;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use voronet_geom::{Point2, Rect};

/// The scenarios of the heavy-traffic suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Zipf-skewed destination hotspots over a uniform overlay.
    ZipfHotspot,
    /// A burst of arrivals into one Voronoi cell, all routes following.
    FlashCrowd,
    /// A whole region leaving back-to-back, then rejoining.
    MassChurn,
    /// Near-degenerate placements: cocircular/grid overlay, collinear
    /// insert sweep.
    DegenerateGeometry,
}

impl ScenarioKind {
    /// Every scenario, in recording order.
    pub fn all() -> [ScenarioKind; 4] {
        [
            ScenarioKind::ZipfHotspot,
            ScenarioKind::FlashCrowd,
            ScenarioKind::MassChurn,
            ScenarioKind::DegenerateGeometry,
        ]
    }

    /// Stable snake-case name used as the JSON section key.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::ZipfHotspot => "zipf_hotspot",
            ScenarioKind::FlashCrowd => "flash_crowd",
            ScenarioKind::MassChurn => "mass_churn",
            ScenarioKind::DegenerateGeometry => "degenerate_geometry",
        }
    }
}

/// Size and seed knobs of one scenario build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Which scenario to script.
    pub kind: ScenarioKind,
    /// Seed of every random draw; the same spec always yields the same
    /// scenario.
    pub seed: u64,
    /// Warm-up population (floored at 8).
    pub population: usize,
    /// Approximate number of measured route ops across all phases
    /// (floored at 8; mass churn may script more to cover the exodus).
    pub ops: usize,
}

impl ScenarioSpec {
    /// A spec with the floors applied.
    pub fn new(kind: ScenarioKind, seed: u64, population: usize, ops: usize) -> Self {
        ScenarioSpec {
            kind,
            seed,
            population: population.max(8),
            ops: ops.max(8),
        }
    }
}

/// One labelled stretch of a scenario's op stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioPhase {
    /// Stable phase label (recorded alongside the latencies).
    pub label: &'static str,
    /// The scripted ops of this phase, in execution order.
    pub ops: Vec<WorkloadOp>,
}

/// A fully scripted scenario: warm-up placements plus phased traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The scenario scripted.
    pub kind: ScenarioKind,
    /// The seed it was built from.
    pub seed: u64,
    /// Warm-up overlay placements, inserted before any phase runs.
    pub setup: Vec<Point2>,
    /// Traffic phases, in execution order.
    pub phases: Vec<ScenarioPhase>,
    /// The stressed region, when the scenario has one (the flash-crowd
    /// cell or the mass-churn exodus region).
    pub hot_region: Option<Rect>,
}

impl Scenario {
    /// Scripts the scenario described by `spec`.
    pub fn build(spec: &ScenarioSpec) -> Scenario {
        let spec = ScenarioSpec::new(spec.kind, spec.seed, spec.population, spec.ops);
        match spec.kind {
            ScenarioKind::ZipfHotspot => zipf_hotspot(&spec),
            ScenarioKind::FlashCrowd => flash_crowd(&spec),
            ScenarioKind::MassChurn => mass_churn(&spec),
            ScenarioKind::DegenerateGeometry => degenerate_geometry(&spec),
        }
    }

    /// Total scripted route ops across all phases — the measured sample
    /// count of a latency run.
    pub fn route_count(&self) -> usize {
        self.phases
            .iter()
            .flat_map(|p| &p.ops)
            .filter(|op| matches!(op, WorkloadOp::Route { .. }))
            .count()
    }
}

/// A non-degenerate route pair below `pop` (`pop >= 2`).
fn route_pair(rng: &mut StdRng, pop: usize) -> (usize, usize) {
    let from = rng.random_range(0..pop);
    let mut to = rng.random_range(0..pop);
    if to == from {
        to = (to + 1) % pop;
    }
    (from, to)
}

fn zipf_hotspot(spec: &ScenarioSpec) -> Scenario {
    let setup =
        PointGenerator::new(Distribution::Uniform, spec.seed ^ 0xA5).take_points(spec.population);
    let sampler = ZipfSampler::new(spec.population, 1.1);
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x407);
    let mut ops = Vec::with_capacity(spec.ops);
    for _ in 0..spec.ops {
        let from = rng.random_range(0..spec.population);
        let mut to = sampler.rank_of(rng.random());
        if to == from {
            to = (to + 1) % spec.population;
        }
        ops.push(WorkloadOp::Route { from, to });
    }
    Scenario {
        kind: spec.kind,
        seed: spec.seed,
        setup,
        phases: vec![ScenarioPhase {
            label: "hotspot_routes",
            ops,
        }],
        hot_region: None,
    }
}

fn flash_crowd(spec: &ScenarioSpec) -> Scenario {
    let setup =
        PointGenerator::new(Distribution::Uniform, spec.seed ^ 0xFC).take_points(spec.population);
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xC201D);
    let center = Point2::new(
        0.2 + 0.6 * rng.random::<f64>(),
        0.2 + 0.6 * rng.random::<f64>(),
    );
    let half = 0.01;
    let hot = Rect::new(
        Point2::new(center.x - half, center.y - half),
        Point2::new(center.x + half, center.y + half),
    );
    // One insert per three routes; the first op is an insert so every
    // route has a crowd member to target.  Inserts append to the dense
    // order, so indices `population..pop` are exactly the crowd.
    let mut pop = spec.population;
    let crowd_base = spec.population;
    let total = spec.ops + spec.ops / 3 + 1;
    let mut ops = Vec::with_capacity(total);
    for i in 0..total {
        if i % 4 == 0 {
            let position = Point2::new(
                hot.min.x + rng.random::<f64>() * hot.width(),
                hot.min.y + rng.random::<f64>() * hot.height(),
            );
            ops.push(WorkloadOp::Insert { position });
            pop += 1;
        } else {
            let to = crowd_base + rng.random_range(0..pop - crowd_base);
            let mut from = rng.random_range(0..pop);
            if from == to {
                from = (from + 1) % pop;
            }
            ops.push(WorkloadOp::Route { from, to });
        }
    }
    Scenario {
        kind: spec.kind,
        seed: spec.seed,
        setup,
        phases: vec![ScenarioPhase {
            label: "crowd_arrives",
            ops,
        }],
        hot_region: Some(hot),
    }
}

fn mass_churn(spec: &ScenarioSpec) -> Scenario {
    let setup =
        PointGenerator::new(Distribution::Uniform, spec.seed ^ 0x3C).take_points(spec.population);
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xC4012);
    let center = Point2::new(
        0.3 + 0.4 * rng.random::<f64>(),
        0.3 + 0.4 * rng.random::<f64>(),
    );
    let half = 0.25;
    let region = Rect::new(
        Point2::new((center.x - half).max(0.0), (center.y - half).max(0.0)),
        Point2::new((center.x + half).min(1.0), (center.y + half).min(1.0)),
    );
    // `model` mirrors the engines' dense order exactly: inserts append,
    // removes swap-remove — so each scripted index hits the intended
    // object at execution time.
    let mut model = setup.clone();
    let floor = 4;

    let mut exodus = Vec::new();
    let mut departed = Vec::new();
    while model.len() > floor {
        let Some(index) = model.iter().position(|p| region.contains(*p)) else {
            break;
        };
        exodus.push(WorkloadOp::Remove { index });
        departed.push(model.swap_remove(index));
        let (from, to) = route_pair(&mut rng, model.len());
        exodus.push(WorkloadOp::Route { from, to });
    }

    let mut rejoin = Vec::new();
    for &p in &departed {
        rejoin.push(WorkloadOp::Insert { position: p });
        model.push(p);
        // Route to the returner: rejoin traffic chases the recovered
        // region, as clients reconnecting after a partition do.
        let to = model.len() - 1;
        let mut from = rng.random_range(0..model.len());
        if from == to {
            from = (from + 1) % model.len();
        }
        rejoin.push(WorkloadOp::Route { from, to });
    }

    // Top up with steady-state routes so the measured sample count
    // reaches the spec regardless of how many objects the region held.
    let churn_routes = exodus.len() / 2 + rejoin.len() / 2;
    let mut recovered = Vec::new();
    for _ in churn_routes..spec.ops {
        let (from, to) = route_pair(&mut rng, model.len());
        recovered.push(WorkloadOp::Route { from, to });
    }

    Scenario {
        kind: spec.kind,
        seed: spec.seed,
        setup,
        phases: vec![
            ScenarioPhase {
                label: "exodus",
                ops: exodus,
            },
            ScenarioPhase {
                label: "rejoin",
                ops: rejoin,
            },
            ScenarioPhase {
                label: "recovered",
                ops: recovered,
            },
        ],
        hot_region: Some(region),
    }
}

fn degenerate_geometry(spec: &ScenarioSpec) -> Scenario {
    let half_pop = spec.population / 2;
    let side = ((half_pop as f64).sqrt().ceil() as usize).max(2);
    let mut setup =
        PointGenerator::new(Distribution::Grid { side, jitter: 0.05 }, spec.seed ^ 0xD6)
            .take_points(half_pop);
    setup.extend(
        PointGenerator::new(Distribution::Ring { jitter: 0.02 }, spec.seed ^ 0xD7)
            .take_points(spec.population - half_pop),
    );
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xDE6E2);
    // A near-collinear sweep along y = 0.5 — collinear triples are the
    // worst case of incremental Delaunay insertion — interleaved with
    // routes over everything inserted so far.
    let mut pop = setup.len();
    let total = spec.ops + spec.ops / 5 + 1;
    let inserts = total / 6 + 1;
    let mut ops = Vec::with_capacity(total);
    for i in 0..total {
        if i % 6 == 0 {
            let step = (i / 6) as f64 / inserts as f64;
            let position = Point2::new(
                0.05 + 0.9 * step + (rng.random::<f64>() - 0.5) * 1e-9,
                0.5 + (rng.random::<f64>() - 0.5) * 1e-7,
            );
            ops.push(WorkloadOp::Insert { position });
            pop += 1;
        } else {
            let (from, to) = route_pair(&mut rng, pop);
            ops.push(WorkloadOp::Route { from, to });
        }
    }
    Scenario {
        kind: spec.kind,
        seed: spec.seed,
        setup,
        phases: vec![ScenarioPhase {
            label: "collinear_stream",
            ops,
        }],
        hot_region: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: ScenarioKind) -> ScenarioSpec {
        ScenarioSpec::new(kind, 0xBEEF, 120, 200)
    }

    #[test]
    fn scenarios_are_deterministic_per_seed() {
        for kind in ScenarioKind::all() {
            let a = Scenario::build(&spec(kind));
            let b = Scenario::build(&spec(kind));
            assert_eq!(a, b, "{}", kind.name());
            let c = Scenario::build(&ScenarioSpec::new(kind, 0xF00D, 120, 200));
            assert_ne!(a, c, "{} must vary with the seed", kind.name());
        }
    }

    #[test]
    fn scripted_indices_stay_below_the_tracked_population() {
        for kind in ScenarioKind::all() {
            let s = Scenario::build(&spec(kind));
            let mut pop = s.setup.len();
            for phase in &s.phases {
                for op in &phase.ops {
                    match *op {
                        WorkloadOp::Insert { .. } => pop += 1,
                        WorkloadOp::Remove { index } => {
                            assert!(index < pop, "{}: remove {index} vs {pop}", kind.name());
                            pop -= 1;
                        }
                        WorkloadOp::Route { from, to } => {
                            assert!(from < pop && to < pop, "{}", kind.name());
                            assert_ne!(from, to, "{}: self-route scripted", kind.name());
                        }
                        ref other => panic!("{}: unexpected op {other:?}", kind.name()),
                    }
                    assert!(pop >= 4, "{}: population underflow", kind.name());
                }
            }
            assert!(
                s.route_count() >= 200,
                "{}: only {} routes",
                kind.name(),
                s.route_count()
            );
        }
    }

    #[test]
    fn flash_crowd_concentrates_inserts_and_routes_into_the_cell() {
        let s = Scenario::build(&spec(ScenarioKind::FlashCrowd));
        let hot = s.hot_region.expect("flash crowd has a hot cell");
        assert!(hot.width() <= 0.021 && hot.height() <= 0.021, "cell-sized");
        let crowd_base = s.setup.len();
        let mut crowd = 0usize;
        for op in &s.phases[0].ops {
            match *op {
                WorkloadOp::Insert { position } => {
                    assert!(hot.contains(position), "arrival outside the cell");
                    crowd += 1;
                }
                WorkloadOp::Route { to, .. } => {
                    assert!(crowd > 0, "route scripted before any arrival");
                    assert!(
                        (crowd_base..crowd_base + crowd).contains(&to),
                        "route target {to} is not a crowd member"
                    );
                }
                ref other => panic!("unexpected op {other:?}"),
            }
        }
        assert!(crowd >= 40, "crowd of {crowd} too small to force splits");
    }

    #[test]
    fn mass_churn_empties_and_refills_the_region() {
        let s = Scenario::build(&spec(ScenarioKind::MassChurn));
        let region = s.hot_region.expect("mass churn has a region");
        let in_region = s.setup.iter().filter(|p| region.contains(**p)).count();
        assert!(in_region >= 10, "region holds only {in_region} objects");

        // Replay the dense-order bookkeeping and check every remove hits
        // an in-region object and the rejoin restores all of them.
        let mut model = s.setup.clone();
        let mut gone = 0usize;
        for op in s.phases.iter().flat_map(|p| &p.ops) {
            match *op {
                WorkloadOp::Remove { index } => {
                    assert!(
                        region.contains(model[index]),
                        "remove {index} hits an out-of-region object"
                    );
                    model.swap_remove(index);
                    gone += 1;
                }
                WorkloadOp::Insert { position } => {
                    assert!(region.contains(position), "rejoin outside the region");
                    model.push(position);
                    gone -= 1;
                }
                WorkloadOp::Route { .. } => {}
                ref other => panic!("unexpected op {other:?}"),
            }
        }
        assert_eq!(gone, 0, "every departure must rejoin");
        assert_eq!(model.len(), s.setup.len());
        assert_eq!(
            s.phases.iter().map(|p| p.label).collect::<Vec<_>>(),
            ["exodus", "rejoin", "recovered"]
        );
    }

    #[test]
    fn degenerate_geometry_scripts_a_near_collinear_sweep() {
        let s = Scenario::build(&spec(ScenarioKind::DegenerateGeometry));
        let inserts: Vec<Point2> = s.phases[0]
            .ops
            .iter()
            .filter_map(|op| match *op {
                WorkloadOp::Insert { position } => Some(position),
                _ => None,
            })
            .collect();
        assert!(inserts.len() >= 20, "{} inserts", inserts.len());
        for p in &inserts {
            assert!((p.y - 0.5).abs() < 1e-6, "sweep point off the line: {p}");
        }
        // Distinct positions: the jitter must prevent exact duplicates,
        // which engines would reject and desync the scripted indices.
        let mut xs: Vec<u64> = inserts.iter().map(|p| p.x.to_bits()).collect();
        xs.sort_unstable();
        xs.dedup();
        assert_eq!(xs.len(), inserts.len(), "duplicate sweep positions");
    }
}
