//! Object-placement distributions over the unit square.
//!
//! The paper evaluates VoroNet under (i) a uniform distribution and (ii)
//! power-law distributions "where the frequency of the i-th most popular
//! value is proportional to 1/i^α", with α ∈ {1, 2, 5} for low, mid and high
//! skew.  This module reproduces those generators and adds a few stress
//! distributions (clusters, grid, ring) used by tests and ablations.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use voronet_geom::{Point2, Rect};

/// Number of distinct attribute values used by the power-law generator: the
/// i-th most popular value is `i / ZIPF_VALUES`, drawn with probability
/// ∝ 1/i^α, then jittered uniformly inside its value cell so that objects do
/// not collide exactly.
pub const ZIPF_VALUES: usize = 1024;

/// A named object-placement distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    /// Uniform over the unit square.
    Uniform,
    /// Power-law (Zipf) attribute values with exponent `alpha`; larger alpha
    /// means more skew (the paper uses 1, 2 and 5).
    PowerLaw {
        /// Zipf exponent.
        alpha: f64,
    },
    /// `clusters` Gaussian-ish clusters of relative spread `spread`.
    Clusters {
        /// Number of cluster centres.
        clusters: usize,
        /// Standard deviation of each cluster relative to the unit square.
        spread: f64,
    },
    /// A jittered regular grid (maximally co-circular stress case).
    Grid {
        /// Grid resolution per axis.
        side: usize,
        /// Relative jitter within each grid cell (0 = exact grid).
        jitter: f64,
    },
    /// Points on a circle (maximal Voronoi-degree stress case).
    Ring {
        /// Relative jitter of the radius (0 = exact co-circularity).
        jitter: f64,
    },
}

impl Distribution {
    /// The four distributions used by the paper's evaluation, in the order
    /// of its figures: uniform then α = 1, 2, 5.
    pub fn paper_set() -> [Distribution; 4] {
        [
            Distribution::Uniform,
            Distribution::PowerLaw { alpha: 1.0 },
            Distribution::PowerLaw { alpha: 2.0 },
            Distribution::PowerLaw { alpha: 5.0 },
        ]
    }

    /// Human-readable label used in figure legends.
    pub fn label(&self) -> String {
        match self {
            Distribution::Uniform => "uniform".to_string(),
            Distribution::PowerLaw { alpha } => format!("sparse alpha={alpha}"),
            Distribution::Clusters { clusters, .. } => format!("clusters k={clusters}"),
            Distribution::Grid { side, .. } => format!("grid {side}x{side}"),
            Distribution::Ring { .. } => "ring".to_string(),
        }
    }
}

/// Streaming point generator for a [`Distribution`], deterministic for a
/// given seed.
#[derive(Debug)]
pub struct PointGenerator {
    dist: Distribution,
    rng: StdRng,
    zipf_cdf: Vec<f64>,
    cluster_centers: Vec<Point2>,
    domain: Rect,
}

impl PointGenerator {
    /// Creates a generator over the unit square.
    pub fn new(dist: Distribution, seed: u64) -> Self {
        Self::with_domain(dist, seed, Rect::UNIT)
    }

    /// Creates a generator over an arbitrary rectangular domain.
    pub fn with_domain(dist: Distribution, seed: u64, domain: Rect) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let zipf_cdf = match dist {
            Distribution::PowerLaw { alpha } => {
                let mut cdf = Vec::with_capacity(ZIPF_VALUES);
                let mut acc = 0.0;
                for i in 1..=ZIPF_VALUES {
                    acc += 1.0 / (i as f64).powf(alpha);
                    cdf.push(acc);
                }
                let total = *cdf.last().expect("ZIPF_VALUES > 0");
                for c in &mut cdf {
                    *c /= total;
                }
                cdf
            }
            _ => Vec::new(),
        };
        let cluster_centers = match dist {
            Distribution::Clusters { clusters, .. } => (0..clusters.max(1))
                .map(|_| Point2::new(rng.random::<f64>(), rng.random::<f64>()))
                .collect(),
            _ => Vec::new(),
        };
        PointGenerator {
            dist,
            rng,
            zipf_cdf,
            cluster_centers,
            domain,
        }
    }

    /// The distribution being sampled.
    pub fn distribution(&self) -> Distribution {
        self.dist
    }

    fn zipf_coordinate(&mut self) -> f64 {
        let u: f64 = self.rng.random();
        // Binary search the normalised CDF.
        let idx = self
            .zipf_cdf
            .partition_point(|&c| c < u)
            .min(ZIPF_VALUES - 1);
        let jitter: f64 = self.rng.random();
        (idx as f64 + jitter) / ZIPF_VALUES as f64
    }

    fn unit_sample(&mut self) -> Point2 {
        match self.dist {
            Distribution::Uniform => Point2::new(self.rng.random(), self.rng.random()),
            Distribution::PowerLaw { .. } => {
                Point2::new(self.zipf_coordinate(), self.zipf_coordinate())
            }
            Distribution::Clusters { spread, .. } => {
                let c = self.cluster_centers[self.rng.random_range(0..self.cluster_centers.len())];
                // Box–Muller transform for an isotropic Gaussian offset.
                let u1: f64 = self.rng.random::<f64>().max(1e-12);
                let u2: f64 = self.rng.random();
                let r = spread * (-2.0 * u1.ln()).sqrt();
                let theta = 2.0 * std::f64::consts::PI * u2;
                Point2::new(
                    (c.x + r * theta.cos()).clamp(0.0, 1.0),
                    (c.y + r * theta.sin()).clamp(0.0, 1.0),
                )
            }
            Distribution::Grid { side, jitter } => {
                let side = side.max(2);
                let i = self.rng.random_range(0..side);
                let j = self.rng.random_range(0..side);
                let cell = 1.0 / side as f64;
                let jx: f64 = (self.rng.random::<f64>() - 0.5) * jitter * cell;
                let jy: f64 = (self.rng.random::<f64>() - 0.5) * jitter * cell;
                Point2::new(
                    ((i as f64 + 0.5) * cell + jx).clamp(0.0, 1.0),
                    ((j as f64 + 0.5) * cell + jy).clamp(0.0, 1.0),
                )
            }
            Distribution::Ring { jitter } => {
                let theta = 2.0 * std::f64::consts::PI * self.rng.random::<f64>();
                let r = 0.4 * (1.0 + jitter * (self.rng.random::<f64>() - 0.5));
                Point2::new(0.5 + r * theta.cos(), 0.5 + r * theta.sin())
            }
        }
    }

    /// Draws the next point of the workload (always inside the domain).
    pub fn next_point(&mut self) -> Point2 {
        let p = self.unit_sample();
        Point2::new(
            self.domain.min.x + p.x * self.domain.width(),
            self.domain.min.y + p.y * self.domain.height(),
        )
    }

    /// Draws `n` points.
    pub fn take_points(&mut self, n: usize) -> Vec<Point2> {
        (0..n).map(|_| self.next_point()).collect()
    }

    /// A uniformly distributed point of the domain regardless of the object
    /// distribution — used for query targets and long-link draws in tests.
    pub fn uniform_point(&mut self) -> Point2 {
        Point2::new(
            self.domain.min.x + self.rng.random::<f64>() * self.domain.width(),
            self.domain.min.y + self.rng.random::<f64>() * self.domain.height(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn in_unit(p: Point2) -> bool {
        Rect::UNIT.contains(p)
    }

    #[test]
    fn all_distributions_stay_in_domain() {
        let dists = [
            Distribution::Uniform,
            Distribution::PowerLaw { alpha: 1.0 },
            Distribution::PowerLaw { alpha: 5.0 },
            Distribution::Clusters {
                clusters: 5,
                spread: 0.05,
            },
            Distribution::Grid {
                side: 10,
                jitter: 0.5,
            },
            Distribution::Ring { jitter: 0.1 },
        ];
        for d in dists {
            let mut g = PointGenerator::new(d, 1);
            for p in g.take_points(500) {
                assert!(in_unit(p), "{d:?} produced {p} outside the unit square");
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let mut a = PointGenerator::new(Distribution::PowerLaw { alpha: 2.0 }, 42);
        let mut b = PointGenerator::new(Distribution::PowerLaw { alpha: 2.0 }, 42);
        assert_eq!(a.take_points(100), b.take_points(100));
        let mut c = PointGenerator::new(Distribution::PowerLaw { alpha: 2.0 }, 43);
        assert_ne!(a.take_points(100), c.take_points(100));
    }

    #[test]
    fn uniform_covers_the_square_evenly() {
        let mut g = PointGenerator::new(Distribution::Uniform, 7);
        let pts = g.take_points(20_000);
        let left = pts.iter().filter(|p| p.x < 0.5).count() as f64 / pts.len() as f64;
        let bottom = pts.iter().filter(|p| p.y < 0.5).count() as f64 / pts.len() as f64;
        assert!((left - 0.5).abs() < 0.02);
        assert!((bottom - 0.5).abs() < 0.02);
    }

    #[test]
    fn power_law_is_skewed_and_more_so_with_alpha() {
        let mass_near_origin = |alpha: f64| {
            let mut g = PointGenerator::new(Distribution::PowerLaw { alpha }, 11);
            let pts = g.take_points(20_000);
            pts.iter().filter(|p| p.x < 0.1 && p.y < 0.1).count() as f64 / pts.len() as f64
        };
        let low = mass_near_origin(1.0);
        let high = mass_near_origin(5.0);
        assert!(low > 0.02, "alpha=1 should concentrate mass, got {low}");
        assert!(
            high > low,
            "alpha=5 ({high}) must be more skewed than alpha=1 ({low})"
        );
        assert!(
            high > 0.9,
            "alpha=5 concentrates almost everything, got {high}"
        );
    }

    #[test]
    fn paper_set_matches_the_evaluation_section() {
        let set = Distribution::paper_set();
        assert_eq!(set[0], Distribution::Uniform);
        assert_eq!(set[3], Distribution::PowerLaw { alpha: 5.0 });
        assert_eq!(set[1].label(), "sparse alpha=1");
    }

    #[test]
    fn custom_domain_scaling() {
        let domain = Rect::new(Point2::new(10.0, 20.0), Point2::new(12.0, 21.0));
        let mut g = PointGenerator::with_domain(Distribution::Uniform, 3, domain);
        for p in g.take_points(200) {
            assert!(domain.contains(p));
        }
        let q = g.uniform_point();
        assert!(domain.contains(q));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Distribution::Uniform.label(), "uniform");
        assert_eq!(
            Distribution::PowerLaw { alpha: 2.0 }.label(),
            "sparse alpha=2"
        );
        assert_eq!(Distribution::Ring { jitter: 0.0 }.label(), "ring");
    }
}
