//! Object-placement distributions over the unit square.
//!
//! The paper evaluates VoroNet under (i) a uniform distribution and (ii)
//! power-law distributions "where the frequency of the i-th most popular
//! value is proportional to 1/i^α", with α ∈ {1, 2, 5} for low, mid and high
//! skew.  This module reproduces those generators and adds a few stress
//! distributions (clusters, grid, ring) used by tests and ablations.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use voronet_geom::{Point2, Rect};

/// Number of distinct attribute values used by the power-law generator: the
/// i-th most popular value is `i / ZIPF_VALUES`, drawn with probability
/// ∝ 1/i^α, then jittered uniformly inside its value cell so that objects do
/// not collide exactly.
pub const ZIPF_VALUES: usize = 1024;

/// A named object-placement distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    /// Uniform over the unit square.
    Uniform,
    /// Power-law (Zipf) attribute values with exponent `alpha`; larger alpha
    /// means more skew (the paper uses 1, 2 and 5).
    PowerLaw {
        /// Zipf exponent.
        alpha: f64,
    },
    /// `clusters` Gaussian-ish clusters of relative spread `spread`.
    Clusters {
        /// Number of cluster centres.
        clusters: usize,
        /// Standard deviation of each cluster relative to the unit square.
        spread: f64,
    },
    /// A jittered regular grid (maximally co-circular stress case).
    Grid {
        /// Grid resolution per axis.
        side: usize,
        /// Relative jitter within each grid cell (0 = exact grid).
        jitter: f64,
    },
    /// Points on a circle (maximal Voronoi-degree stress case).
    Ring {
        /// Relative jitter of the radius (0 = exact co-circularity).
        jitter: f64,
    },
}

impl Distribution {
    /// The four distributions used by the paper's evaluation, in the order
    /// of its figures: uniform then α = 1, 2, 5.
    pub fn paper_set() -> [Distribution; 4] {
        [
            Distribution::Uniform,
            Distribution::PowerLaw { alpha: 1.0 },
            Distribution::PowerLaw { alpha: 2.0 },
            Distribution::PowerLaw { alpha: 5.0 },
        ]
    }

    /// Human-readable label used in figure legends.
    pub fn label(&self) -> String {
        match self {
            Distribution::Uniform => "uniform".to_string(),
            Distribution::PowerLaw { alpha } => format!("sparse alpha={alpha}"),
            Distribution::Clusters { clusters, .. } => format!("clusters k={clusters}"),
            Distribution::Grid { side, .. } => format!("grid {side}x{side}"),
            Distribution::Ring { .. } => "ring".to_string(),
        }
    }
}

/// Inverse-CDF sampler of a Zipf law over ranks `0..n`: rank `r` is
/// drawn with probability proportional to `1 / (r + 1)^alpha`.
///
/// The cumulative distribution is computed and normalised **once**, so
/// each draw costs one uniform variate plus a binary search — O(log n)
/// instead of re-walking the partial harmonic sum per sample.  That
/// matters for the flash-crowd and hotspot scenarios, which draw
/// destination ranks millions of times against a stable population.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    alpha: f64,
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n.max(1)` ranks with exponent `alpha`
    /// (`alpha = 0` degenerates to uniform).
    pub fn new(n: usize, alpha: f64) -> Self {
        let n = n.max(1);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += (r as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("n >= 1");
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { alpha, cdf }
    }

    /// Number of ranks (always at least 1).
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Never true — the sampler always covers at least one rank.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The exponent the CDF was built for.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Maps one uniform variate `u ∈ [0, 1)` to its rank: the smallest
    /// `r` whose cumulative mass reaches `u`.
    pub fn rank_of(&self, u: f64) -> usize {
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Analytic probability mass of rank `r` (the CDF difference) — what
    /// the statistical tests compare empirical frequencies against.
    pub fn probability(&self, r: usize) -> f64 {
        if r >= self.cdf.len() {
            return 0.0;
        }
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }
}

/// Streaming point generator for a [`Distribution`], deterministic for a
/// given seed.
#[derive(Debug)]
pub struct PointGenerator {
    dist: Distribution,
    rng: StdRng,
    zipf: Option<ZipfSampler>,
    cluster_centers: Vec<Point2>,
    domain: Rect,
}

impl PointGenerator {
    /// Creates a generator over the unit square.
    pub fn new(dist: Distribution, seed: u64) -> Self {
        Self::with_domain(dist, seed, Rect::UNIT)
    }

    /// Creates a generator over an arbitrary rectangular domain.
    pub fn with_domain(dist: Distribution, seed: u64, domain: Rect) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let zipf = match dist {
            Distribution::PowerLaw { alpha } => Some(ZipfSampler::new(ZIPF_VALUES, alpha)),
            _ => None,
        };
        let cluster_centers = match dist {
            Distribution::Clusters { clusters, .. } => (0..clusters.max(1))
                .map(|_| Point2::new(rng.random::<f64>(), rng.random::<f64>()))
                .collect(),
            _ => Vec::new(),
        };
        PointGenerator {
            dist,
            rng,
            zipf,
            cluster_centers,
            domain,
        }
    }

    /// The distribution being sampled.
    pub fn distribution(&self) -> Distribution {
        self.dist
    }

    fn zipf_coordinate(&mut self) -> f64 {
        let u: f64 = self.rng.random();
        let idx = self
            .zipf
            .as_ref()
            .expect("power-law generators carry a sampler")
            .rank_of(u);
        let jitter: f64 = self.rng.random();
        (idx as f64 + jitter) / ZIPF_VALUES as f64
    }

    fn unit_sample(&mut self) -> Point2 {
        match self.dist {
            Distribution::Uniform => Point2::new(self.rng.random(), self.rng.random()),
            Distribution::PowerLaw { .. } => {
                Point2::new(self.zipf_coordinate(), self.zipf_coordinate())
            }
            Distribution::Clusters { spread, .. } => {
                let c = self.cluster_centers[self.rng.random_range(0..self.cluster_centers.len())];
                // Box–Muller transform for an isotropic Gaussian offset.
                let u1: f64 = self.rng.random::<f64>().max(1e-12);
                let u2: f64 = self.rng.random();
                let r = spread * (-2.0 * u1.ln()).sqrt();
                let theta = 2.0 * std::f64::consts::PI * u2;
                Point2::new(
                    (c.x + r * theta.cos()).clamp(0.0, 1.0),
                    (c.y + r * theta.sin()).clamp(0.0, 1.0),
                )
            }
            Distribution::Grid { side, jitter } => {
                let side = side.max(2);
                let i = self.rng.random_range(0..side);
                let j = self.rng.random_range(0..side);
                let cell = 1.0 / side as f64;
                let jx: f64 = (self.rng.random::<f64>() - 0.5) * jitter * cell;
                let jy: f64 = (self.rng.random::<f64>() - 0.5) * jitter * cell;
                Point2::new(
                    ((i as f64 + 0.5) * cell + jx).clamp(0.0, 1.0),
                    ((j as f64 + 0.5) * cell + jy).clamp(0.0, 1.0),
                )
            }
            Distribution::Ring { jitter } => {
                let theta = 2.0 * std::f64::consts::PI * self.rng.random::<f64>();
                let r = 0.4 * (1.0 + jitter * (self.rng.random::<f64>() - 0.5));
                Point2::new(0.5 + r * theta.cos(), 0.5 + r * theta.sin())
            }
        }
    }

    /// Draws the next point of the workload (always inside the domain).
    pub fn next_point(&mut self) -> Point2 {
        let p = self.unit_sample();
        Point2::new(
            self.domain.min.x + p.x * self.domain.width(),
            self.domain.min.y + p.y * self.domain.height(),
        )
    }

    /// Draws `n` points.
    pub fn take_points(&mut self, n: usize) -> Vec<Point2> {
        (0..n).map(|_| self.next_point()).collect()
    }

    /// A uniformly distributed point of the domain regardless of the object
    /// distribution — used for query targets and long-link draws in tests.
    pub fn uniform_point(&mut self) -> Point2 {
        Point2::new(
            self.domain.min.x + self.rng.random::<f64>() * self.domain.width(),
            self.domain.min.y + self.rng.random::<f64>() * self.domain.height(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn in_unit(p: Point2) -> bool {
        Rect::UNIT.contains(p)
    }

    #[test]
    fn all_distributions_stay_in_domain() {
        let dists = [
            Distribution::Uniform,
            Distribution::PowerLaw { alpha: 1.0 },
            Distribution::PowerLaw { alpha: 5.0 },
            Distribution::Clusters {
                clusters: 5,
                spread: 0.05,
            },
            Distribution::Grid {
                side: 10,
                jitter: 0.5,
            },
            Distribution::Ring { jitter: 0.1 },
        ];
        for d in dists {
            let mut g = PointGenerator::new(d, 1);
            for p in g.take_points(500) {
                assert!(in_unit(p), "{d:?} produced {p} outside the unit square");
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let mut a = PointGenerator::new(Distribution::PowerLaw { alpha: 2.0 }, 42);
        let mut b = PointGenerator::new(Distribution::PowerLaw { alpha: 2.0 }, 42);
        assert_eq!(a.take_points(100), b.take_points(100));
        let mut c = PointGenerator::new(Distribution::PowerLaw { alpha: 2.0 }, 43);
        assert_ne!(a.take_points(100), c.take_points(100));
    }

    #[test]
    fn uniform_covers_the_square_evenly() {
        let mut g = PointGenerator::new(Distribution::Uniform, 7);
        let pts = g.take_points(20_000);
        let left = pts.iter().filter(|p| p.x < 0.5).count() as f64 / pts.len() as f64;
        let bottom = pts.iter().filter(|p| p.y < 0.5).count() as f64 / pts.len() as f64;
        assert!((left - 0.5).abs() < 0.02);
        assert!((bottom - 0.5).abs() < 0.02);
    }

    #[test]
    fn power_law_is_skewed_and_more_so_with_alpha() {
        let mass_near_origin = |alpha: f64| {
            let mut g = PointGenerator::new(Distribution::PowerLaw { alpha }, 11);
            let pts = g.take_points(20_000);
            pts.iter().filter(|p| p.x < 0.1 && p.y < 0.1).count() as f64 / pts.len() as f64
        };
        let low = mass_near_origin(1.0);
        let high = mass_near_origin(5.0);
        assert!(low > 0.02, "alpha=1 should concentrate mass, got {low}");
        assert!(
            high > low,
            "alpha=5 ({high}) must be more skewed than alpha=1 ({low})"
        );
        assert!(
            high > 0.9,
            "alpha=5 concentrates almost everything, got {high}"
        );
    }

    #[test]
    fn paper_set_matches_the_evaluation_section() {
        let set = Distribution::paper_set();
        assert_eq!(set[0], Distribution::Uniform);
        assert_eq!(set[3], Distribution::PowerLaw { alpha: 5.0 });
        assert_eq!(set[1].label(), "sparse alpha=1");
    }

    #[test]
    fn custom_domain_scaling() {
        let domain = Rect::new(Point2::new(10.0, 20.0), Point2::new(12.0, 21.0));
        let mut g = PointGenerator::with_domain(Distribution::Uniform, 3, domain);
        for p in g.take_points(200) {
            assert!(domain.contains(p));
        }
        let q = g.uniform_point();
        assert!(domain.contains(q));
    }

    #[test]
    fn zipf_sampler_binary_search_matches_the_linear_walk() {
        // The binary search must agree with the specification — the
        // linear inverse-CDF walk over the unnormalised partial sums —
        // on every variate.
        let (n, alpha) = (257, 1.1);
        let s = ZipfSampler::new(n, alpha);
        let linear = |u: f64| {
            let h: f64 = (1..=n).map(|r| (r as f64).powf(-alpha)).sum();
            let mut u = u * h;
            for r in 0..n {
                u -= ((r + 1) as f64).powf(-alpha);
                if u <= 0.0 {
                    return r;
                }
            }
            n - 1
        };
        let mut rng = StdRng::seed_from_u64(0x21F);
        for _ in 0..5_000 {
            let u: f64 = rng.random();
            assert_eq!(s.rank_of(u), linear(u), "u = {u}");
        }
        assert_eq!(s.rank_of(0.0), 0);
        assert_eq!(s.rank_of(1.0), n - 1);
    }

    #[test]
    fn zipf_sampler_empirical_frequencies_match_the_exponent() {
        let (n, alpha) = (1_000, 1.2);
        let s = ZipfSampler::new(n, alpha);
        let samples = 200_000usize;
        let mut counts = vec![0u32; n];
        let mut rng = StdRng::seed_from_u64(0x5A3F);
        for _ in 0..samples {
            counts[s.rank_of(rng.random())] += 1;
        }
        // Head ranks carry enough mass for a tight check: empirical
        // frequency within 10% of the analytic probability.
        for (r, &count) in counts.iter().enumerate().take(8) {
            let expected = s.probability(r) * samples as f64;
            assert!(expected > 1_000.0, "head rank {r} too light to test");
            let got = count as f64;
            assert!(
                (got - expected).abs() / expected < 0.10,
                "rank {r}: got {got}, expected {expected:.0}"
            );
        }
        // The log-log slope over the well-sampled head must recover the
        // target exponent: ln(count_r) ≈ C - alpha * ln(r + 1).
        let pts: Vec<(f64, f64)> = counts
            .iter()
            .enumerate()
            .take(64)
            .filter(|&(_, &c)| c >= 50)
            .map(|(r, &c)| (((r + 1) as f64).ln(), (c as f64).ln()))
            .collect();
        assert!(pts.len() >= 16, "need a sampled head, got {}", pts.len());
        let m = pts.len() as f64;
        let (sx, sy) = pts
            .iter()
            .fold((0.0, 0.0), |(a, b), &(x, y)| (a + x, b + y));
        let (sxx, sxy) = pts
            .iter()
            .fold((0.0, 0.0), |(a, b), &(x, y)| (a + x * x, b + x * y));
        let slope = (m * sxy - sx * sy) / (m * sxx - sx * sx);
        assert!(
            (slope + alpha).abs() < 0.1,
            "fitted exponent {:.3}, target {alpha}",
            -slope
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Distribution::Uniform.label(), "uniform");
        assert_eq!(
            Distribution::PowerLaw { alpha: 2.0 }.label(),
            "sparse alpha=2"
        );
        assert_eq!(Distribution::Ring { jitter: 0.0 }.label(), "ring");
    }
}
