//! # voronet-workloads
//!
//! Workload generators for the VoroNet experiments: the object-placement
//! distributions of the paper's evaluation (uniform and power-law with
//! α ∈ {1, 2, 5}), stress distributions for robustness tests (clusters,
//! jittered grids, rings of co-circular points) and query generators
//! (random object pairs, range and radius queries).
//!
//! All generators are seeded and deterministic so every figure of
//! EXPERIMENTS.md can be regenerated bit-for-bit.

#![warn(missing_docs)]

pub mod distribution;
pub mod ops;
pub mod queries;
pub mod scenario;

pub use distribution::{Distribution, PointGenerator, ZipfSampler, ZIPF_VALUES};
pub use ops::{OpBatchGenerator, OpMix, WorkloadOp};
pub use queries::{QueryGenerator, RadiusQuery, RangeQuery};
pub use scenario::{Scenario, ScenarioKind, ScenarioPhase, ScenarioSpec};
