//! Query workload generators.
//!
//! The routing experiments of the paper measure greedy route lengths over
//! "100 000 random couples of different objects"; the range-query extension
//! additionally needs random segments and disks of the attribute space.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use voronet_geom::{Point2, Rect};

/// A generator of routing / range / radius query workloads, deterministic
/// for a given seed.
#[derive(Debug)]
pub struct QueryGenerator {
    rng: StdRng,
    domain: Rect,
}

/// A rectangular range query (both attributes constrained).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangeQuery {
    /// Queried axis-aligned rectangle.
    pub rect: Rect,
}

/// A radius (disk) query around a centre point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadiusQuery {
    /// Centre of the queried disk.
    pub center: Point2,
    /// Radius of the queried disk.
    pub radius: f64,
}

impl QueryGenerator {
    /// Creates a generator over the unit square.
    pub fn new(seed: u64) -> Self {
        Self::with_domain(seed, Rect::UNIT)
    }

    /// Creates a generator over an arbitrary domain.
    pub fn with_domain(seed: u64, domain: Rect) -> Self {
        QueryGenerator {
            rng: StdRng::seed_from_u64(seed),
            domain,
        }
    }

    /// A uniformly random point of the domain.
    pub fn point(&mut self) -> Point2 {
        Point2::new(
            self.domain.min.x + self.rng.random::<f64>() * self.domain.width(),
            self.domain.min.y + self.rng.random::<f64>() * self.domain.height(),
        )
    }

    /// A random pair of *distinct* indices below `n` (a route source and
    /// destination object, as in Figure 6).
    ///
    /// # Panics
    /// Panics if `n < 2`.
    pub fn object_pair(&mut self, n: usize) -> (usize, usize) {
        assert!(n >= 2, "need at least two objects to form a pair");
        let a = self.rng.random_range(0..n);
        let mut b = self.rng.random_range(0..n - 1);
        if b >= a {
            b += 1;
        }
        (a, b)
    }

    /// `count` random distinct pairs.
    pub fn object_pairs(&mut self, n: usize, count: usize) -> Vec<(usize, usize)> {
        (0..count).map(|_| self.object_pair(n)).collect()
    }

    /// A random index below `n`.
    pub fn object_index(&mut self, n: usize) -> usize {
        self.rng.random_range(0..n)
    }

    /// A random axis-aligned range query whose sides are at most
    /// `max_extent` of the domain size.
    pub fn range_query(&mut self, max_extent: f64) -> RangeQuery {
        let w = self.rng.random::<f64>() * max_extent * self.domain.width();
        let h = self.rng.random::<f64>() * max_extent * self.domain.height();
        let x = self.domain.min.x + self.rng.random::<f64>() * (self.domain.width() - w);
        let y = self.domain.min.y + self.rng.random::<f64>() * (self.domain.height() - h);
        RangeQuery {
            rect: Rect::new(Point2::new(x, y), Point2::new(x + w, y + h)),
        }
    }

    /// A random disk query of radius at most `max_radius`.
    pub fn radius_query(&mut self, max_radius: f64) -> RadiusQuery {
        RadiusQuery {
            center: self.point(),
            radius: self.rng.random::<f64>() * max_radius,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_are_distinct_and_in_range() {
        let mut g = QueryGenerator::new(1);
        for _ in 0..10_000 {
            let (a, b) = g.object_pair(50);
            assert_ne!(a, b);
            assert!(a < 50 && b < 50);
        }
        // Smallest possible population.
        for _ in 0..100 {
            let (a, b) = g.object_pair(2);
            assert_ne!(a, b);
        }
    }

    #[test]
    #[should_panic]
    fn pair_needs_two_objects() {
        QueryGenerator::new(1).object_pair(1);
    }

    #[test]
    fn pair_distribution_is_roughly_uniform() {
        let mut g = QueryGenerator::new(2);
        let n = 10;
        let mut counts = vec![0usize; n];
        for _ in 0..50_000 {
            let (a, b) = g.object_pair(n);
            counts[a] += 1;
            counts[b] += 1;
        }
        let expected = 2.0 * 50_000.0 / n as f64;
        for &c in &counts {
            assert!((c as f64 - expected).abs() < 0.1 * expected);
        }
    }

    #[test]
    fn points_and_queries_stay_in_domain() {
        let mut g = QueryGenerator::new(3);
        for _ in 0..1000 {
            assert!(Rect::UNIT.contains(g.point()));
            let rq = g.range_query(0.3);
            assert!(Rect::UNIT.contains(rq.rect.min));
            assert!(Rect::UNIT.contains(rq.rect.max));
            assert!(rq.rect.width() <= 0.3 + 1e-12);
            let dq = g.radius_query(0.2);
            assert!(Rect::UNIT.contains(dq.center));
            assert!(dq.radius <= 0.2);
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let mut a = QueryGenerator::new(9);
        let mut b = QueryGenerator::new(9);
        assert_eq!(a.object_pairs(100, 50), b.object_pairs(100, 50));
    }
}
