//! Cross-crate property test for the geo-scoped KV: under arbitrary
//! interleavings of puts, gets, deletes and churn, `get` always returns
//! the value of the last `put` — the overlay's ownership handoffs are
//! invisible to clients.
//!
//! Each case is a random script of [`Step`]s replayed from scratch
//! against a [`ServiceEngine`]-wrapped sync engine and a plain
//! `HashMap` model; any disagreement is shrunk by the testkit's
//! script-dropping shrinker before being reported, so a failure prints
//! a near-minimal interleaving.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::RngExt;
use voronet::prelude::*;
use voronet_testkit::check_cases;

/// One step of a KV-under-churn script.  Keys come from a small palette
/// (`slot` indexes it) so puts, gets and deletes actually collide.
#[derive(Debug, Clone, Copy)]
enum Step {
    Insert(Point2),
    Remove(usize),
    Put { slot: usize, value: u64 },
    Get { slot: usize },
    Delete { slot: usize },
}

const KEY_PALETTE: usize = 8;

fn key_of(slot: usize) -> u64 {
    ((slot % KEY_PALETTE) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC0FFEE
}

fn random_script(rng: &mut StdRng) -> Vec<Step> {
    let len = rng.random_range(40..120usize);
    (0..len)
        .map(|_| match rng.random_range(0..10u32) {
            0 | 1 => Step::Insert(Point2::new(rng.random(), rng.random())),
            2 => Step::Remove(rng.random_range(0..64usize)),
            3..=5 => Step::Put {
                slot: rng.random_range(0..KEY_PALETTE),
                value: rng.random(),
            },
            6..=8 => Step::Get {
                slot: rng.random_range(0..KEY_PALETTE),
            },
            _ => Step::Delete {
                slot: rng.random_range(0..KEY_PALETTE),
            },
        })
        .collect()
}

/// Replays `script` against the engine and the map model; errors on the
/// first observable disagreement.
fn check_script(script: &[Step]) -> Result<(), String> {
    let mut engine = ServiceEngine::new(OverlayBuilder::new(256).seed(77).build_sync());
    // A seeded base population: service ops need a live overlay, and a
    // floor of survivors keeps removals from emptying it mid-script.
    let mut live = Vec::new();
    let mut seeds = PointGenerator::new(Distribution::Uniform, 0xBA5E);
    while live.len() < 8 {
        if let Ok(r) = engine.insert(seeds.next_point()) {
            live.push(r.id);
        }
    }
    let mut model: HashMap<u64, u64> = HashMap::new();

    for (i, step) in script.iter().enumerate() {
        let from = live[i % live.len()];
        match *step {
            Step::Insert(p) => {
                if let Ok(r) = engine.insert(p) {
                    live.push(r.id);
                }
            }
            Step::Remove(idx) => {
                if live.len() > 4 {
                    let id = live.swap_remove(idx % live.len());
                    engine
                        .remove(id)
                        .map_err(|e| format!("step {i}: removing live {id:?}: {e}"))?;
                }
            }
            Step::Put { slot, value } => {
                let key = key_of(slot);
                match engine.exec_service(ServiceOp::KvPut { from, key, value }) {
                    OpResult::Service(ServiceResult::Put(p)) => {
                        let expected = model.insert(key, value).is_some();
                        voronet_testkit::tk_ensure_eq!(
                            p.replaced,
                            expected,
                            "step {i}: put key {key:#x} replaced-flag"
                        );
                    }
                    other => return Err(format!("step {i}: put failed: {other:?}")),
                }
            }
            Step::Get { slot } => {
                let key = key_of(slot);
                match engine.exec_service(ServiceOp::KvGet { from, key }) {
                    OpResult::Service(ServiceResult::Got(g)) => {
                        voronet_testkit::tk_ensure_eq!(
                            g.value,
                            model.get(&key).copied(),
                            "step {i}: get key {key:#x} must return the last put"
                        );
                    }
                    other => return Err(format!("step {i}: get failed: {other:?}")),
                }
            }
            Step::Delete { slot } => {
                let key = key_of(slot);
                match engine.exec_service(ServiceOp::KvDelete { from, key }) {
                    OpResult::Service(ServiceResult::Deleted(d)) => {
                        let expected = model.remove(&key).is_some();
                        voronet_testkit::tk_ensure_eq!(
                            d.existed,
                            expected,
                            "step {i}: delete key {key:#x} existed-flag"
                        );
                    }
                    other => return Err(format!("step {i}: delete failed: {other:?}")),
                }
            }
        }
    }
    engine
        .verify_invariants()
        .map_err(|e| format!("after the script: {e}"))
}

#[test]
fn kv_get_returns_last_put_under_churn() {
    let cases = if std::env::var("VORONET_SMOKE").is_ok_and(|v| v == "1") {
        24
    } else {
        64
    };
    check_cases(
        "kv get/put/delete vs map model under churn",
        cases,
        0x5EED_C0DE,
        random_script,
        |script| check_script(script),
    );
}
