//! Property tests pinning the epoch-patched frozen read path to the
//! ground truth, in tier-1.
//!
//! The tentpole invariant of the incremental `FrozenView`: a view kept
//! current by [`FrozenView::refresh`] after arbitrary interleaved
//! insert/remove/route sequences is **bit-identical** to a from-scratch
//! `freeze()` — same ids in live scan order, same SoA coordinates, same
//! adjacency rows — and every route walked over it returns the same
//! `(owner, hops)` and the same per-node message counters as the live
//! mutable walk.  The double-buffered [`ViewGenerations`] front must
//! agree with both.  Checked here through the workspace's shrinking
//! property harness (`voronet_testkit::check_cases`), plus a
//! deterministic end-to-end pass over the `OpMix::mixed` presets on the
//! sync engine comparing both maintenance policies element-wise.

use rand::rngs::StdRng;
use rand::RngExt;
use voronet::api::{resolve_workload, Overlay, OverlayBuilder};
use voronet::prelude::*;
use voronet_testkit::{check_cases, tk_ensure, tk_ensure_eq};

/// One scripted step of the property: ops are index-named so shrunk
/// scripts stay meaningful after earlier steps are dropped.
#[derive(Debug, Clone, PartialEq)]
enum Step {
    Insert { x: f64, y: f64 },
    Remove { pick: usize },
    Route { from: usize, to: usize },
}

fn generate_steps(rng: &mut StdRng) -> Vec<Step> {
    let len = rng.random_range(24..64usize);
    (0..len)
        .map(|_| {
            let u: f64 = rng.random();
            if u < 0.20 {
                Step::Insert {
                    x: rng.random(),
                    y: rng.random(),
                }
            } else if u < 0.38 {
                Step::Remove {
                    pick: rng.random_range(0..4096usize),
                }
            } else {
                Step::Route {
                    from: rng.random_range(0..4096usize),
                    to: rng.random_range(0..4096usize),
                }
            }
        })
        .collect()
}

/// Runs one script against two identically-seeded overlays — one served
/// by live mutable walks, one by a continuously delta-patched
/// [`FrozenView`] (and a [`ViewGenerations`] pair advanced at every
/// read) — and checks bit-identity at every read barrier.
fn check_script(steps: &[Step]) -> Result<(), String> {
    let config = VoroNetConfig::new(256);
    let mut live = VoroNet::new(config);
    let mut net = VoroNet::new(config);
    let mut warm = PointGenerator::new(Distribution::Uniform, 0xEB0C);
    for _ in 0..24 {
        let p = warm.next_point();
        let a = live.insert(p).map(|r| r.id).ok();
        let b = net.insert(p).map(|r| r.id).ok();
        tk_ensure_eq!(a, b, "warm-up inserts agree");
    }

    let mut view: Option<FrozenView> = None;
    let mut gens: Option<ViewGenerations> = None;
    let mut scratch = RouteScratch::new();
    for (i, step) in steps.iter().enumerate() {
        match *step {
            Step::Insert { x, y } => {
                let p = Point2::new(x, y);
                let a = live.insert(p).map(|r| r.id).ok();
                let b = net.insert(p).map(|r| r.id).ok();
                tk_ensure_eq!(a, b, "step {i}: insert outcome");
            }
            Step::Remove { pick } => {
                if live.len() <= 8 {
                    continue;
                }
                let id = live.id_at(pick % live.len()).expect("index below len");
                let a = live.remove(id).map(|_| ()).ok();
                let b = net.remove(id).map(|_| ()).ok();
                tk_ensure_eq!(a, b, "step {i}: remove outcome for {id:?}");
            }
            Step::Route { from, to } => {
                if live.len() < 2 {
                    continue;
                }
                let from = live.id_at(from % live.len()).expect("index below len");
                let to = live.id_at(to % live.len()).expect("index below len");
                let report = live
                    .route_between(from, to)
                    .map_err(|e| format!("step {i}: live route failed: {e}"))?;

                // Retained view: freeze once, then delta-patch forward.
                let (refresh, view) = match view.as_mut() {
                    None => {
                        view = Some(net.freeze());
                        (ViewRefresh::Rebuilt, view.as_mut().expect("just built"))
                    }
                    Some(v) => (v.refresh(&net), v),
                };
                net.record_view_refresh(&refresh);
                tk_ensure_eq!(
                    view.epoch(),
                    net.snapshot_epoch(),
                    "step {i}: refresh reaches the current epoch"
                );

                // Bit-identity: ids in live scan order, SoA coords and
                // adjacency rows all equal a from-scratch freeze
                // (FrozenView::eq compares exactly those).
                let fresh = net.freeze();
                tk_ensure!(
                    *view == fresh,
                    "step {i}: patched view diverged from a fresh freeze \
                     (epoch {}, {} nodes)",
                    view.epoch(),
                    view.len()
                );

                // The double-buffered generations flip to an equal front.
                let gens = gens.get_or_insert_with(|| ViewGenerations::new(&net));
                gens.advance(&net);
                tk_ensure!(
                    *gens.front() == fresh,
                    "step {i}: generation front diverged from a fresh freeze"
                );

                // Same walk, same accounting as the live engine.
                scratch.delta.clear();
                let (owner, hops) = view
                    .route_between_in(from, to, &mut scratch)
                    .map_err(|e| format!("step {i}: frozen route failed: {e}"))?;
                net.apply_traffic(&scratch.delta);
                tk_ensure_eq!(owner, report.owner, "step {i}: route owner");
                tk_ensure_eq!(hops, report.hops, "step {i}: route hops");
            }
        }
    }

    // After the whole interleaving the two overlays agree on membership
    // order and on every per-node sent counter (the frozen side's traffic
    // was applied from read deltas).
    tk_ensure_eq!(live.len(), net.len(), "final population");
    for idx in 0..live.len() {
        let a = live.id_at(idx);
        let b = net.id_at(idx);
        tk_ensure_eq!(a, b, "dense order at {idx}");
        let id = a.expect("index below len");
        tk_ensure_eq!(live.sent_by(id), net.sent_by(id), "sent counter of {id:?}");
    }
    Ok(())
}

#[test]
fn delta_patched_views_stay_bit_identical_to_fresh_freezes() {
    check_cases(
        "frozen-epoch-bit-identity",
        24,
        0x5EED_E90C,
        generate_steps,
        |steps: &Vec<Step>| check_script(steps),
    );
}

/// The engine-level contract across maintenance policies: the same
/// `OpMix::mixed` script produces element-wise identical results whether
/// the view is delta-patched or rebuilt at every barrier — and the
/// incremental engine's economics show it actually patched and reused.
#[test]
fn mixed_batches_agree_across_maintenance_policies() {
    for read_pct in [99u32, 95, 80] {
        let mut inc = OverlayBuilder::new(400)
            .seed(61)
            .build_sync()
            .with_view_maintenance(ViewMaintenance::Incremental);
        let mut rebuild = OverlayBuilder::new(400)
            .seed(61)
            .build_sync()
            .with_view_maintenance(ViewMaintenance::RebuildPerBarrier);
        let mut gen = OpBatchGenerator::new(
            Distribution::Uniform,
            u64::from(read_pct),
            OpMix::mixed(read_pct),
        )
        .with_zipf_destinations(0.9);
        let mut points = PointGenerator::new(Distribution::Uniform, 71);
        for _ in 0..150 {
            let p = points.next_point();
            assert_eq!(
                inc.insert(p).map(|r| r.id).ok(),
                rebuild.insert(p).map(|r| r.id).ok()
            );
        }
        for batch in 0..6 {
            let script = gen.batch(inc.len(), 200);
            let ops = resolve_workload(&inc, &script);
            let a = inc.apply_batch(&ops);
            let b = rebuild.apply_batch(&ops);
            assert_eq!(a, b, "mixed({read_pct}) batch {batch} diverged");
        }
        assert_eq!(inc.stats(), rebuild.stats(), "mixed({read_pct}) stats");
        let snap = inc.snapshot_stats();
        assert!(
            snap.delta_patches > 0,
            "mixed({read_pct}): incremental engine never patched: {snap}"
        );
        assert!(
            snap.full_rebuilds < snap.delta_patches,
            "mixed({read_pct}): patches must dominate rebuilds: {snap}"
        );
        let base = rebuild.snapshot_stats();
        assert_eq!(
            base.delta_patches, 0,
            "mixed({read_pct}): rebuild-per-barrier must never patch: {base}"
        );
    }
}
