//! Counting-allocator proof of the zero-copy routing hot path: once the
//! caller's buffers have warmed up, a greedy route over the arena-backed
//! overlay performs **no heap allocation at all** — every hop is a scan of
//! a borrowed [`voronet_core::ViewRef`].  The pin covers all three read
//! operations routed through the reusable [`voronet_core::RouteScratch`]
//! (`route_to_point_in`, `route_between_in`, `handle_query_in`) as well as
//! the inline-accounting `route_to_point_into` wrapper.
//!
//! This file deliberately contains a single test: the counting allocator is
//! process-global, and a concurrently running test would perturb the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use voronet::prelude::*;
use voronet_workloads::Distribution;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn greedy_routing_is_allocation_free_after_warmup() {
    let mut net = VoroNet::new(VoroNetConfig::new(2_000).with_seed(7));
    for p in PointGenerator::new(Distribution::Uniform, 11).take_points(2_000) {
        let _ = net.insert(p);
    }
    let ids: Vec<ObjectId> = net.ids().collect();
    assert!(net.len() > 1_900);

    // A deterministic pair set: routing consumes no randomness, so replaying
    // the same pairs touches exactly the same nodes (and therefore the same,
    // already-materialised traffic-counter entries) as the warm-up pass.
    let pairs: Vec<(ObjectId, ObjectId)> = (0..64)
        .map(|i| {
            let a = ids[(i * 31) % ids.len()];
            let b = ids[(i * 97 + 13) % ids.len()];
            (a, b)
        })
        .filter(|(a, b)| a != b)
        .collect();

    let mut path: Vec<ObjectId> = Vec::new();

    // Warm-up: grows the path buffer to the longest route of the set.
    let mut warm_hops = Vec::new();
    for &(a, b) in &pairs {
        let target = net.coords(b).unwrap();
        let (owner, hops) = net.route_to_point_into(a, target, &mut path).unwrap();
        assert_eq!(owner, b);
        warm_hops.push(hops);
    }

    // Measured pass: identical routes, zero allocations.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut total_hops = 0u64;
    for (&(a, b), &expected_hops) in pairs.iter().zip(&warm_hops) {
        let target = net.coords(b).unwrap();
        let (owner, hops) = net.route_to_point_into(a, target, &mut path).unwrap();
        assert_eq!(owner, b);
        assert_eq!(hops, expected_hops, "routing must be deterministic");
        total_hops += hops as u64;
    }
    let allocated = ALLOCATIONS.load(Ordering::Relaxed) - before;

    assert!(total_hops > 100, "the pair set must exercise real routes");
    assert_eq!(
        allocated,
        0,
        "greedy routing over a warmed-up overlay must not touch the heap \
         ({allocated} allocations across {} routes, {total_hops} hops)",
        pairs.len()
    );

    // The `&self` scratch forms of all three read operations: routes to a
    // point, routes between objects and point queries share one warmed
    // RouteScratch and must not allocate either.  The delta buffer grows
    // during warm-up and is cleared (capacity kept) between passes.
    let mut scratch = voronet::core::RouteScratch::new();
    for &(a, b) in &pairs {
        let target = net.coords(b).unwrap();
        net.route_to_point_in(a, target, &mut scratch).unwrap();
        net.route_between_in(a, b, &mut scratch).unwrap();
        net.handle_query_in(a, target, &mut scratch).unwrap();
    }
    scratch.delta.clear();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for (&(a, b), &expected_hops) in pairs.iter().zip(&warm_hops) {
        let target = net.coords(b).unwrap();
        let (owner, hops) = net.route_to_point_in(a, target, &mut scratch).unwrap();
        assert_eq!((owner, hops), (b, expected_hops));
        let (owner, hops) = net.route_between_in(a, b, &mut scratch).unwrap();
        assert_eq!((owner, hops), (b, expected_hops));
        let (owner, hops) = net.handle_query_in(a, target, &mut scratch).unwrap();
        assert_eq!((owner, hops), (b, expected_hops));
    }
    let allocated = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(
        scratch.delta.len() as u64 >= 3 * total_hops,
        "the scratch delta must have accumulated every recorded message"
    );
    assert_eq!(
        allocated, 0,
        "scratch-based routes and point queries must not touch the heap \
         ({allocated} allocations)"
    );

    // Applying the accumulated delta replays onto already-materialised
    // counters: no allocation there either.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    net.apply_traffic(&scratch.delta);
    let allocated = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocated, 0,
        "replaying a delta over warmed counters must not touch the heap"
    );
}
