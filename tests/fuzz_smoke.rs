//! Bounded-iteration differential fuzzing as part of tier-1.
//!
//! The full budget lives in the `fuzz` CLI (`crates/testkit/src/bin`),
//! run by the CI `fuzz-smoke` step; this suite keeps a small always-on
//! slice in `cargo test`: a handful of seeded cases through the five-way
//! differential harness, the detect→shrink→reproduce self-test with the
//! deliberately planted frozen-route fault, and replay of every
//! reproducer file committed under `tests/reproducers/`.

use voronet_testkit::{
    generate_case, list_reproducers, read_reproducer, run_case, shrink_case, write_reproducer,
    Fault, FuzzSpec,
};

/// A few seeded smoke cases must run divergence-free across all engines.
#[test]
fn seeded_smoke_cases_are_divergence_free() {
    for seed in 2007..2011u64 {
        let case = generate_case(&FuzzSpec {
            warmup: 20,
            ops: 140,
            ..FuzzSpec::smoke(seed)
        });
        let report = run_case(&case, Fault::None).unwrap_or_else(|d| {
            panic!("seed {seed}: divergence {d}\nreplay: FuzzSpec::smoke({seed}) with warmup 20, ops 140")
        });
        assert!(report.ops_run >= 100, "seed {seed}: {report:?}");
        assert!(
            report.invariants_checked > 0,
            "seed {seed}: vacuous invariant audits"
        );
    }
}

/// The acceptance self-test: a wrong hop planted in a scratch copy of the
/// frozen execution is caught, shrunk to ≤ 20 ops, and the reproducer
/// file round-trips and still reproduces after a parse.
#[test]
fn planted_fault_is_caught_shrunk_and_reproducible_from_file() {
    let case = generate_case(&FuzzSpec {
        warmup: 16,
        ops: 180,
        lossy: false,
        ..FuzzSpec::smoke(4242)
    });
    let outcome = shrink_case(&case, Fault::FrozenRouteExtraHop, 2_000);
    assert!(
        outcome.case.script.len() <= 20,
        "reproducer must shrink to at most 20 ops, got {}",
        outcome.case.script.len()
    );

    // Write/parse/replay round trip through a scratch directory.
    let dir = std::env::temp_dir().join(format!("voronet-fuzz-smoke-{}", std::process::id()));
    let path = write_reproducer(&dir, &outcome.case, Some(&outcome.divergence))
        .expect("reproducer writes");
    let parsed = read_reproducer(&path).expect("reproducer parses");
    assert_eq!(parsed, outcome.case, "reproducers round-trip bit-exactly");
    let replayed = run_case(&parsed, Fault::FrozenRouteExtraHop)
        .expect_err("the parsed reproducer still diverges under the fault");
    assert_eq!(replayed.kind, "result:frozen", "{replayed}");
    // Without the planted fault the same case is clean.
    run_case(&parsed, Fault::None)
        .unwrap_or_else(|d| panic!("fault-free replay must be clean: {d}"));
    std::fs::remove_dir_all(&dir).ok();
}

/// Every reproducer committed under `tests/reproducers/` must replay
/// cleanly: a file that still diverges marks an unfixed bug and fails
/// tier-1 (and the CI fuzz-smoke step) until it is fixed or retired.
#[test]
fn committed_reproducers_replay_clean() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/reproducers");
    for path in list_reproducers(&dir) {
        let case = read_reproducer(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        run_case(&case, Fault::None).unwrap_or_else(|d| {
            panic!(
                "reproducer {} STILL DIVERGES: {d}\nfix the bug (or retire the file) before \
                 merging",
                path.display()
            )
        });
    }
}
