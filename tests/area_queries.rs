//! Integration tests for the range/radius query extension: results must
//! match a brute-force scan of the published objects, for every workload.

use voronet::prelude::*;
use voronet_core::experiments::build_overlay;
use voronet_core::VoroNetConfig;
use voronet_workloads::{RadiusQuery, RangeQuery};

fn check_queries(dist: Distribution, seed: u64) {
    let n = 600;
    let cfg = VoroNetConfig::new(n).with_seed(seed);
    let (mut net, ids) = build_overlay(dist, n, cfg);
    let mut qg = QueryGenerator::new(seed ^ 0xBEEF);

    for trial in 0..15 {
        let rq = qg.range_query(0.3);
        let mut expected: Vec<ObjectId> = ids
            .iter()
            .copied()
            .filter(|&id| rq.rect.contains(net.coords(id).unwrap()))
            .collect();
        expected.sort_unstable();
        let from = ids[qg.object_index(ids.len())];
        let got = range_query(&mut net, from, rq).unwrap();
        assert_eq!(
            got.matches,
            expected,
            "{} range query #{trial} mismatch (seed {seed})",
            dist.label()
        );

        let dq = qg.radius_query(0.2);
        let mut expected: Vec<ObjectId> = ids
            .iter()
            .copied()
            .filter(|&id| net.coords(id).unwrap().distance(dq.center) <= dq.radius)
            .collect();
        expected.sort_unstable();
        let got = radius_query(&mut net, from, dq).unwrap();
        assert_eq!(
            got.matches,
            expected,
            "{} radius query #{trial} mismatch (seed {seed})",
            dist.label()
        );
    }
}

#[test]
fn queries_match_bruteforce_uniform() {
    check_queries(Distribution::Uniform, 1);
}

#[test]
fn queries_match_bruteforce_skewed() {
    check_queries(Distribution::PowerLaw { alpha: 2.0 }, 2);
}

#[test]
fn queries_match_bruteforce_clustered() {
    check_queries(
        Distribution::Clusters {
            clusters: 6,
            spread: 0.05,
        },
        3,
    );
}

#[test]
fn whole_domain_query_returns_everything() {
    let n = 300;
    let cfg = VoroNetConfig::new(n).with_seed(8);
    let (mut net, ids) = build_overlay(Distribution::Uniform, n, cfg);
    let report = range_query(&mut net, ids[0], RangeQuery { rect: Rect::UNIT }).unwrap();
    assert_eq!(report.matches.len(), n);
    assert_eq!(report.visited, n);

    let report = radius_query(
        &mut net,
        ids[0],
        RadiusQuery {
            center: Point2::new(0.5, 0.5),
            radius: 1.0,
        },
    )
    .unwrap();
    assert_eq!(report.matches.len(), n);
}
