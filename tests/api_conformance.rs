//! Conformance suite for the backend-agnostic `Overlay` API: every test
//! runs against both engines through `Box<dyn Overlay>`, and the
//! cross-engine tests additionally assert that the synchronous fast path
//! and the message-driven runtime produce *identical* results on loss-free
//! networks — owners, hop counts, query matches and invariants.

use voronet::prelude::*;
use voronet_api::resolve_workload;
use voronet_workloads::{RadiusQuery, RangeQuery, WorkloadOp};

const NMAX: usize = 1_000;
const SEED: u64 = 2006;

/// Both engines, freshly built from the same builder (ideal network for
/// the asynchronous one, so results must agree).
fn backends() -> Vec<Box<dyn Overlay>> {
    let builder = OverlayBuilder::new(NMAX).seed(SEED);
    vec![
        builder.clone().engine(EngineKind::Sync).build(),
        builder.engine(EngineKind::Async).build(),
    ]
}

fn populate(net: &mut dyn Overlay, n: usize, seed: u64) -> Vec<ObjectId> {
    let mut points = PointGenerator::new(Distribution::Uniform, seed);
    let mut ids = Vec::with_capacity(n);
    while ids.len() < n {
        match net.insert(points.next_point()) {
            Ok(outcome) => ids.push(outcome.id),
            Err(e) => match e.kind() {
                ErrorKind::DuplicatePosition(_) => continue,
                other => panic!("unexpected insert failure: {other:?}"),
            },
        }
    }
    ids
}

#[test]
fn insert_route_and_snapshot_conform_on_every_backend() {
    for mut net in backends() {
        let name = net.engine_name();
        assert!(net.is_empty(), "{name}: a fresh overlay is empty");
        let ids = populate(net.as_mut(), 150, 17);
        assert_eq!(net.len(), 150, "{name}");
        for &id in &ids {
            assert!(net.contains(id), "{name}");
            assert!(net.coords(id).is_some(), "{name}");
        }
        // `ids()` is the dense sampling order.
        assert_eq!(net.ids().len(), 150, "{name}");
        assert!(
            net.id_at(149).is_some() && net.id_at(150).is_none(),
            "{name}"
        );

        // Route termination: every route between live objects ends at the
        // destination (the owner of its own coordinates).
        let mut qg = QueryGenerator::new(23);
        for _ in 0..40 {
            let (a, b) = qg.object_pair(ids.len());
            let report = net.route_between(ids[a], ids[b]).unwrap();
            assert_eq!(report.owner, ids[b], "{name}: route must reach its target");
        }

        // Snapshots describe live state.
        let view = net.snapshot(ids[0]).unwrap();
        assert_eq!(view.id, ids[0], "{name}");
        assert!(view.size() > 0, "{name}");
        assert_eq!(view.long_links.len(), net.config().long_links, "{name}");

        // Errors come through the unified taxonomy.
        let dead = ObjectId(u64::MAX);
        assert!(matches!(
            net.route_between(dead, ids[0]).unwrap_err().kind(),
            ErrorKind::UnknownObject(_)
        ));
        assert!(matches!(
            net.remove(dead).unwrap_err().kind(),
            ErrorKind::UnknownObject(_)
        ));
        assert!(matches!(
            net.snapshot(dead).unwrap_err().kind(),
            ErrorKind::UnknownObject(_)
        ));

        net.verify_invariants().unwrap();
        let stats = net.stats();
        assert_eq!(stats.population, 150, "{name}");
        assert!(stats.messages > 0, "{name}");
        assert!(stats.routes_completed >= 40, "{name}");
    }
}

#[test]
fn join_leave_invariants_hold_on_every_backend() {
    for mut net in backends() {
        let name = net.engine_name();
        let ids = populate(net.as_mut(), 120, 31);
        // Remove a third of the population, interleaved with fresh joins.
        let mut points = PointGenerator::new(Distribution::Uniform, 37);
        for (i, &id) in ids.iter().enumerate().take(60) {
            if i % 3 == 0 {
                net.insert(points.next_point()).unwrap();
            }
            let removed = net.remove(id).unwrap();
            assert_eq!(removed.id, id, "{name}");
            assert!(!net.contains(id), "{name}: removed object must be gone");
        }
        assert_eq!(net.len(), 120 - 60 + 20, "{name}");
        net.verify_invariants().unwrap();

        // Routing still terminates after churn.
        let live = net.ids();
        let mut qg = QueryGenerator::new(41);
        for _ in 0..25 {
            let (a, b) = qg.object_pair(live.len());
            let report = net.route_between(live[a], live[b]).unwrap();
            assert_eq!(report.owner, live[b], "{name}");
        }
    }
}

#[test]
fn area_queries_match_brute_force_on_every_backend() {
    for mut net in backends() {
        let name = net.engine_name();
        let ids = populate(net.as_mut(), 200, 43);
        let rect = Rect::new(Point2::new(0.25, 0.3), Point2::new(0.65, 0.75));
        let expected: Vec<ObjectId> = {
            let mut v: Vec<ObjectId> = net
                .ids()
                .into_iter()
                .filter(|&id| rect.contains(net.coords(id).unwrap()))
                .collect();
            v.sort_unstable();
            v
        };
        let report = net.range(ids[0], RangeQuery { rect }).unwrap();
        assert_eq!(report.matches, expected, "{name}: range query correctness");
        assert!(report.visited >= report.matches.len(), "{name}");

        let disk = RadiusQuery {
            center: Point2::new(0.5, 0.5),
            radius: 0.2,
        };
        let expected: Vec<ObjectId> = {
            let mut v: Vec<ObjectId> = net
                .ids()
                .into_iter()
                .filter(|&id| net.coords(id).unwrap().distance(disk.center) <= disk.radius)
                .collect();
            v.sort_unstable();
            v
        };
        let report = net.radius(ids[5], disk).unwrap();
        assert_eq!(report.matches, expected, "{name}: radius query correctness");
    }
}

/// The heart of the suite: the synchronous and asynchronous engines,
/// driven through the same trait with the same seeds on a loss-free
/// network, agree operation for operation.
#[test]
fn sync_and_async_engines_agree_on_loss_free_networks() {
    let mut engines = backends();
    let mut split = engines.split_off(1);
    let (sync_net, async_net) = (engines[0].as_mut(), split[0].as_mut());

    // Identical insert sequences produce identical populations.
    let sync_ids = populate(sync_net, 180, 53);
    let async_ids = populate(async_net, 180, 53);
    assert_eq!(sync_ids, async_ids, "assigned ids must agree");
    for &id in &sync_ids {
        assert_eq!(sync_net.coords(id), async_net.coords(id));
    }

    // Identical routes: same owners, same hop counts.
    let mut qg = QueryGenerator::new(59);
    for _ in 0..60 {
        let (a, b) = qg.object_pair(sync_ids.len());
        let s = sync_net.route_between(sync_ids[a], sync_ids[b]).unwrap();
        let r = async_net.route_between(async_ids[a], async_ids[b]).unwrap();
        assert_eq!(s.owner, r.owner, "owners must agree on a loss-free network");
        assert_eq!(s.hops, r.hops, "hop counts must agree with fresh views");
    }

    // Identical area queries.
    let rect = Rect::new(Point2::new(0.1, 0.2), Point2::new(0.5, 0.6));
    let s = sync_net.range(sync_ids[3], RangeQuery { rect }).unwrap();
    let r = async_net.range(async_ids[3], RangeQuery { rect }).unwrap();
    assert_eq!(s.matches, r.matches);
    assert_eq!(s.routing_hops, r.routing_hops);

    // Identical removals keep both engines aligned.
    for &id in sync_ids.iter().take(40) {
        sync_net.remove(id).unwrap();
        async_net.remove(id).unwrap();
    }
    assert_eq!(sync_net.len(), async_net.len());
    sync_net.verify_invariants().unwrap();
    async_net.verify_invariants().unwrap();
    let mut qg = QueryGenerator::new(61);
    let live = sync_net.ids();
    assert_eq!(live, async_net.ids(), "dense orders must stay aligned");
    for _ in 0..30 {
        let (a, b) = qg.object_pair(live.len());
        let s = sync_net.route_between(live[a], live[b]).unwrap();
        let r = async_net.route_between(live[a], live[b]).unwrap();
        assert_eq!((s.owner, s.hops), (r.owner, r.hops));
    }
}

/// The same generated workload script, resolved and batch-applied on both
/// engines, yields element-wise identical results.
#[test]
fn batched_workloads_agree_across_engines() {
    let mut engines = backends();
    let mut split = engines.split_off(1);
    let (sync_net, async_net) = (engines[0].as_mut(), split[0].as_mut());
    populate(sync_net, 150, 67);
    populate(async_net, 150, 67);

    let mut gen = OpBatchGenerator::new(Distribution::Uniform, 71, OpMix::read_heavy());
    let script: Vec<WorkloadOp> = gen.batch(150, 200);

    let sync_ops = resolve_workload(sync_net, &script);
    let async_ops = resolve_workload(async_net, &script);
    assert_eq!(sync_ops, async_ops, "resolution must agree");

    let sync_results = sync_net.apply_batch(&sync_ops);
    let async_results = async_net.apply_batch(&async_ops);
    assert_eq!(sync_results.len(), async_results.len());
    for (i, (s, r)) in sync_results.iter().zip(&async_results).enumerate() {
        assert_eq!(s, r, "batch op {i} ({:?}) must agree", sync_ops[i]);
    }
    assert!(
        sync_results.iter().all(OpResult::is_ok),
        "loss-free batches succeed"
    );

    sync_net.verify_invariants().unwrap();
    async_net.verify_invariants().unwrap();
    assert_eq!(sync_net.len(), async_net.len());
}

/// The parallel read path is invisible: a mixed insert/route/range/radius
/// batch produces element-wise identical `OpResult`s, identical aggregate
/// stats and identical per-node sent counters at 1, 2, 4 and 8 worker
/// threads — and all of them match the pre-parallel sequential engine
/// (per-op `apply` with inline accounting).
#[test]
fn parallel_batches_are_bit_identical_across_thread_counts() {
    let build_engine = || {
        let mut engine = OverlayBuilder::new(NMAX).seed(SEED).build_sync();
        populate(&mut engine, 300, 83);
        engine
    };

    // Two batches: a read-heavy generated one (frequent write barriers,
    // short read runs that stay on the per-op path) and a hand-stretched
    // mixed one whose long read stretches — routes, range/radius queries
    // and snapshots — cross the frozen-view threshold between insert and
    // remove barriers, so both executor paths are exercised.
    let mut gen = OpBatchGenerator::new(Distribution::Uniform, 89, OpMix::read_heavy());
    let script: Vec<WorkloadOp> = gen.batch(300, 400);
    let mut read_gen = OpBatchGenerator::new(Distribution::Uniform, 97, OpMix::read_only());
    let read_script: Vec<WorkloadOp> = read_gen.batch(300, 300);

    let mut reference = build_engine();
    let pre_ids = reference.ids();
    let ops = resolve_workload(&reference, &script);
    let read_ops = {
        let reads = resolve_workload(&reference, &read_script);
        let mut points = PointGenerator::new(Distribution::Uniform, 101);
        let mut stretched = Vec::with_capacity(reads.len() + 16);
        for (i, chunk) in reads.chunks(60).enumerate() {
            stretched.push(Op::Insert {
                position: points.next_point(),
            });
            stretched.extend_from_slice(chunk);
            stretched.push(Op::Snapshot {
                id: pre_ids[(i * 13) % pre_ids.len()],
            });
            // A departure barrier; later reads referencing the departed
            // object must fail identically on every path.
            stretched.push(Op::Remove {
                id: pre_ids[(i * 29 + 7) % pre_ids.len()],
            });
        }
        stretched
    };

    // Reference: the pre-parallel sequential path, one op at a time.
    let mut ref_results: Vec<OpResult> = ops.iter().map(|op| reference.apply(op)).collect();
    ref_results.extend(read_ops.iter().map(|op| reference.apply(op)));
    let ref_stats = reference.stats();
    let ref_sent: Vec<_> = reference
        .ids()
        .into_iter()
        .map(|id| (id, reference.net().sent_by(id)))
        .collect();

    for threads in [1usize, 2, 4, 8] {
        let mut engine = build_engine().with_threads(threads);
        assert_eq!(engine.threads(), threads);
        let mut results = engine.apply_batch(&ops);
        results.extend(engine.apply_batch(&read_ops));
        assert_eq!(results.len(), ref_results.len());
        for (i, (got, want)) in results.iter().zip(&ref_results).enumerate() {
            assert_eq!(
                got,
                want,
                "op {i} ({:?}) differs at {threads} thread(s)",
                if i < ops.len() {
                    &ops[i]
                } else {
                    &read_ops[i - ops.len()]
                }
            );
        }
        assert_eq!(
            engine.stats(),
            ref_stats,
            "aggregate stats must be identical at {threads} thread(s)"
        );
        for &(id, sent) in &ref_sent {
            assert_eq!(
                engine.net().sent_by(id),
                sent,
                "per-node sent counter of {id} differs at {threads} thread(s)"
            );
        }
        engine.verify_invariants().unwrap();
    }
}

/// Lossy networks surface real failures through the unified taxonomy
/// instead of panicking or silently dropping operations.
#[test]
fn lossy_async_engine_reports_lost_operations() {
    use voronet::sim::{LatencyModel, NetworkModel};
    let mut net: Box<dyn Overlay> = OverlayBuilder::new(NMAX)
        .seed(SEED)
        .engine(EngineKind::Async)
        .network(NetworkModel::new(7, LatencyModel::Uniform { min: 1, max: 10 }).with_loss(0.35))
        .build();
    let mut points = PointGenerator::new(Distribution::Uniform, 73);
    let mut inserted = Vec::new();
    let mut lost = 0usize;
    for _ in 0..120 {
        match net.insert(points.next_point()) {
            Ok(outcome) => inserted.push(outcome.id),
            Err(e) if matches!(e.kind(), ErrorKind::OperationLost) => lost += 1,
            Err(e) => panic!("unexpected failure kind: {e}"),
        }
    }
    assert!(lost > 0, "35% loss must lose some joins");
    assert_eq!(
        net.len(),
        inserted.len(),
        "failed joins must not leak state"
    );

    let mut route_lost = 0usize;
    let mut qg = QueryGenerator::new(79);
    for _ in 0..80 {
        let (a, b) = qg.object_pair(inserted.len());
        match net.route_between(inserted[a], inserted[b]) {
            Ok(report) => assert!(net.contains(report.owner)),
            Err(e) => {
                assert!(matches!(e.kind(), ErrorKind::OperationLost), "{e}");
                route_lost += 1;
            }
        }
    }
    assert!(route_lost > 0, "lossy routes must sometimes be lost");
    net.verify_invariants().unwrap();
}

/// The real wire codec is transparent to the simulated path: an
/// `AsyncEngine` whose runtime round-trips every protocol message
/// through `voronet-net`'s frame codec (encode → bytes → decode) is
/// bit-identical to the plain engine — element-wise batch results,
/// populations and traffic accounting — on ideal *and* lossy networks,
/// because the tap changes the payload representation only, never the
/// delivery decisions of the scheduler.
#[test]
fn codec_tapped_async_engine_is_bit_identical() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use voronet::core::{ProtocolMsg, WireTap};
    use voronet::net::CodecTap;
    use voronet::sim::{LatencyModel, MessageKind, NetworkModel, NodeId};

    /// A [`CodecTap`] that additionally counts frames into a shared
    /// counter the test can read after the engine is consumed.
    #[derive(Clone)]
    struct CountingTap {
        inner: CodecTap,
        frames: Arc<AtomicU64>,
    }

    impl WireTap for CountingTap {
        fn roundtrip(
            &mut self,
            from: NodeId,
            to: NodeId,
            kind: MessageKind,
            msg: ProtocolMsg,
        ) -> ProtocolMsg {
            self.frames.fetch_add(1, Ordering::Relaxed);
            self.inner.roundtrip(from, to, kind, msg)
        }

        fn clone_box(&self) -> Box<dyn WireTap> {
            Box::new(self.clone())
        }
    }

    let networks = [
        NetworkModel::ideal(),
        NetworkModel::new(7, LatencyModel::Uniform { min: 1, max: 10 }).with_loss(0.35),
    ];
    for network in networks {
        let frames = Arc::new(AtomicU64::new(0));
        let build = |tap: Option<Box<dyn WireTap>>| {
            let mut engine = OverlayBuilder::new(NMAX)
                .seed(SEED)
                .network(network.clone())
                .build_async();
            if let Some(tap) = tap {
                engine.overlay_mut().set_wire_tap(tap);
            }
            engine
        };
        let mut plain = build(None);
        let mut tapped = build(Some(Box::new(CountingTap {
            inner: CodecTap::new(),
            frames: Arc::clone(&frames),
        })));

        // Same script on both: inserts (losses included), then a mixed
        // churn/route/query batch.
        let mut points = PointGenerator::new(Distribution::Uniform, 91);
        for _ in 0..140 {
            let p = points.next_point();
            let a = plain.insert(p);
            let b = tapped.insert(p);
            assert_eq!(a.is_ok(), b.is_ok(), "insert outcome at {p:?}");
            if let (Ok(a), Ok(b)) = (a, b) {
                assert_eq!(a.id, b.id, "assigned ids");
            }
        }
        assert_eq!(plain.len(), tapped.len());

        let mut gen = OpBatchGenerator::new(Distribution::Uniform, 97, OpMix::default());
        let script: Vec<WorkloadOp> = gen.batch(plain.len(), 250);
        let plain_ops = resolve_workload(&plain, &script);
        let tapped_ops = resolve_workload(&tapped, &script);
        assert_eq!(plain_ops, tapped_ops, "resolution must agree");
        let plain_results = plain.apply_batch(&plain_ops);
        let tapped_results = tapped.apply_batch(&tapped_ops);
        for (i, (p, t)) in plain_results.iter().zip(&tapped_results).enumerate() {
            assert_eq!(p, t, "batch op {i} ({:?})", plain_ops[i]);
        }

        // Identical accounting, down to per-kind message counters.
        assert_eq!(
            plain.overlay_mut().traffic(),
            tapped.overlay_mut().traffic(),
            "traffic accounting must be bit-identical under the tap"
        );
        assert_eq!(plain.stats(), tapped.stats());
        assert!(
            frames.load(Ordering::Relaxed) > 0,
            "the tap must actually have carried frames"
        );
    }
}
