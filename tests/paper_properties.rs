//! Integration tests checking, at CI scale, the qualitative properties the
//! paper's evaluation establishes at 300 000 objects.

use voronet::prelude::*;
use voronet_core::experiments::{
    build_overlay, degree_distribution, long_link_sweep, mean_route_length, route_length_growth,
    GrowthExperiment,
};
use voronet_core::VoroNetConfig;
use voronet_stats::fit_loglog_exponent;

/// Figure 5 (shape): the Voronoi out-degree distribution is centred around 6
/// and essentially independent of the object distribution.
#[test]
fn degree_distribution_is_centred_on_six_for_all_distributions() {
    for dist in [Distribution::Uniform, Distribution::PowerLaw { alpha: 5.0 }] {
        let h = degree_distribution(dist, 1_500, 42);
        assert_eq!(h.total(), 1_500);
        let mode = h.mode().unwrap();
        assert!(
            (5..=7).contains(&mode),
            "{}: degree mode {mode} should be near 6",
            dist.label()
        );
        assert!(
            h.mean() > 5.0 && h.mean() < 6.5,
            "{}: mean degree {} out of the expected band",
            dist.label(),
            h.mean()
        );
        // Planarity bounds the tail sharply: nothing close to linear degree.
        assert!(
            h.max().unwrap() < 30,
            "{}: unexpected huge degree",
            dist.label()
        );
    }
}

/// Figure 6 (shape): mean route length grows (it must — the overlay gets
/// bigger) but far slower than linearly, and skew does not destroy routing.
#[test]
fn route_length_grows_slowly_and_ignores_skew() {
    let exp = GrowthExperiment {
        max_objects: 1_800,
        step: 600,
        pairs_per_sample: 400,
        long_links: 1,
        seed: 7,
    };
    let uniform = route_length_growth(Distribution::Uniform, exp);
    let skewed = route_length_growth(Distribution::PowerLaw { alpha: 5.0 }, exp);
    assert_eq!(uniform.len(), 3);
    assert_eq!(skewed.len(), 3);

    // Growth from 600 to 1800 objects (3x) must stay well below 3x hops.
    let (first, last) = (uniform.points[0].1, uniform.points[2].1);
    assert!(
        last < first * 2.0,
        "uniform routing grew too fast: {first} -> {last}"
    );

    // Skewed and uniform routing costs stay within a small constant factor.
    for (u, s) in uniform.points.iter().zip(skewed.points.iter()) {
        assert!(
            s.1 < u.1 * 2.0 + 5.0,
            "skewed routing ({}) too far above uniform ({}) at n={}",
            s.1,
            u.1,
            u.0
        );
    }
}

/// Figure 7 (shape): the log(H) vs log(log(N)) fit has a slope compatible
/// with poly-logarithmic routing.  At CI scale the slope estimate is noisy,
/// so only sanity bounds are asserted; EXPERIMENTS.md reports the full-scale
/// value (≈ 2).
#[test]
fn hop_growth_is_polylogarithmic() {
    let exp = GrowthExperiment {
        max_objects: 2_400,
        step: 400,
        pairs_per_sample: 400,
        long_links: 1,
        seed: 13,
    };
    let series = route_length_growth(Distribution::Uniform, exp);
    assert_eq!(series.len(), 6);
    let fit = fit_loglog_exponent(&series.points).expect("enough points to fit");
    assert!(
        fit.slope > 0.0 && fit.slope < 6.0,
        "log-log slope {} incompatible with poly-log routing",
        fit.slope
    );
}

/// Figure 8 (shape): adding long-range links improves routing, with
/// diminishing returns.
#[test]
fn additional_long_links_improve_routing() {
    let series = long_link_sweep(Distribution::Uniform, 1_200, 6, 500, 3);
    assert_eq!(series.len(), 6);
    let k1 = series.points[0].1;
    let k6 = series.points[5].1;
    assert!(
        k6 < k1,
        "6 long links ({k6} hops) must beat 1 long link ({k1} hops)"
    );
    // Diminishing returns: the first few links bring most of the gain.
    let k3 = series.points[2].1;
    assert!(
        (k1 - k3) > (k3 - k6) * 0.5,
        "gain pattern unexpected: k1={k1}, k3={k3}, k6={k6}"
    );
}

/// Memory claim of Section 4.1: view sizes are O(1) — in particular they do
/// not grow with the overlay size.
#[test]
fn view_sizes_do_not_grow_with_overlay_size() {
    let mut means = Vec::new();
    for &n in &[400usize, 1_600usize] {
        let cfg = VoroNetConfig::new(n).with_seed(5);
        let (net, _) = build_overlay(Distribution::Uniform, n, cfg);
        means.push(net.view_size_histogram().mean());
    }
    assert!(
        means[1] < means[0] * 1.5 + 2.0,
        "mean view size grew with n: {:?}",
        means
    );
}

/// Routing correctness under skew: every greedy route ends at the true owner
/// of the target.
#[test]
fn greedy_routing_is_exact_under_heavy_skew() {
    const OVERLAY_SEED: u64 = 23;
    const QUERY_SEED: u64 = 11;
    let cfg = VoroNetConfig::new(800).with_seed(OVERLAY_SEED);
    let (mut net, ids) = build_overlay(Distribution::PowerLaw { alpha: 5.0 }, 800, cfg);
    let mut qg = QueryGenerator::new(QUERY_SEED);
    for trial in 0..300 {
        let target = qg.point();
        let from = ids[qg.object_index(ids.len())];
        let expected = net.owner_of(target).unwrap();
        let got = net.route_to_point(from, target).unwrap();
        assert_eq!(
            got.owner, expected,
            "trial {trial} (overlay seed {OVERLAY_SEED}, query seed {QUERY_SEED}): route from \
             {from} towards {target} missed the owner"
        );
    }
}

/// The baseline comparison the related-work section implies: at equal
/// population, VoroNet's routing is in the same ballpark as the Kleinberg
/// grid it generalises (same asymptotics, comparable constants).
#[test]
fn voronet_matches_kleinberg_grid_ballpark() {
    use voronet_smallworld::{KleinbergConfig, KleinbergGrid};
    let side = 32u32;
    let population = (side * side) as usize;
    let grid = KleinbergGrid::build(KleinbergConfig::navigable(side), 3);
    let grid_hops = grid.mean_route_length(400, 1);

    let cfg = VoroNetConfig::new(population).with_seed(3);
    let (mut net, ids) = build_overlay(Distribution::Uniform, population, cfg);
    let net_hops = mean_route_length(&mut net, &ids, 400, 2);

    assert!(
        net_hops < grid_hops * 4.0 && grid_hops < net_hops * 4.0,
        "hop counts too far apart: VoroNet {net_hops}, Kleinberg {grid_hops}"
    );
}
