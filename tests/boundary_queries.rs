//! Area queries at the attribute-domain boundary, pinned to the
//! brute-force oracle.
//!
//! The flood phase of `range_query_in`/`radius_query_in` walks Voronoi
//! cells, and cells of boundary objects are clipped by the domain edge —
//! historically the easiest place for an "intersects the query area"
//! predicate to go wrong.  These tests build overlays whose population
//! includes objects *exactly on* the domain edges and corners, issue
//! queries flush with / crossing / degenerate at the boundary, and check
//! every result against exhaustive scans (directly and through the
//! testkit's [`OracleModel`]), plus the `visited == flood_messages + 1`
//! accounting invariant and the equality of the `&self` `_in` forms with
//! their `&mut` wrappers.

use voronet::prelude::*;
use voronet_core::queries::{radius_query, radius_query_in, range_query, range_query_in};
use voronet_testkit::OracleModel;
use voronet_workloads::{RadiusQuery, RangeQuery};

/// Interior lattice plus every domain edge and corner.
fn boundary_population() -> Vec<Point2> {
    let mut pts = Vec::new();
    // Corners of the unit domain.
    for &(x, y) in &[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)] {
        pts.push(Point2::new(x, y));
    }
    // Edge midpoints and quarter points (exactly on the boundary).
    for i in 1..4 {
        let t = f64::from(i) / 4.0;
        pts.push(Point2::new(t, 0.0));
        pts.push(Point2::new(t, 1.0));
        pts.push(Point2::new(0.0, t));
        pts.push(Point2::new(1.0, t));
    }
    // Interior jittered lattice.
    for i in 0..5 {
        for j in 0..5 {
            pts.push(Point2::new(
                0.1 + 0.2 * f64::from(i) + 0.013 * f64::from(j),
                0.1 + 0.2 * f64::from(j) + 0.017 * f64::from(i),
            ));
        }
    }
    pts
}

fn build() -> (VoroNet, Vec<ObjectId>, OracleModel) {
    let cfg = VoroNetConfig::new(100).with_seed(77);
    let mut net = VoroNet::new(cfg);
    let mut oracle = OracleModel::new(&cfg);
    let mut ids = Vec::new();
    for p in boundary_population() {
        let r = net
            .insert(p)
            .unwrap_or_else(|e| panic!("boundary point {p} must insert: {e}"));
        let result = voronet_api::OpResult::Inserted(voronet_api::InsertOutcome { id: r.id });
        oracle
            .check_apply(&voronet_api::Op::Insert { position: p }, &result)
            .unwrap();
        ids.push(r.id);
    }
    (net, ids, oracle)
}

fn brute_range(net: &VoroNet, ids: &[ObjectId], rect: Rect) -> Vec<ObjectId> {
    let mut v: Vec<ObjectId> = ids
        .iter()
        .copied()
        .filter(|&id| rect.contains(net.coords(id).unwrap()))
        .collect();
    v.sort_unstable();
    v
}

fn brute_radius(net: &VoroNet, ids: &[ObjectId], q: RadiusQuery) -> Vec<ObjectId> {
    let mut v: Vec<ObjectId> = ids
        .iter()
        .copied()
        .filter(|&id| net.coords(id).unwrap().distance2(q.center) <= q.radius * q.radius)
        .collect();
    v.sort_unstable();
    v
}

fn boundary_rects() -> Vec<Rect> {
    vec![
        // The full domain: every object (including all boundary ones).
        Rect::UNIT,
        // Flush with each edge.
        Rect::new(Point2::new(0.0, 0.0), Point2::new(1.0, 0.25)),
        Rect::new(Point2::new(0.0, 0.75), Point2::new(1.0, 1.0)),
        Rect::new(Point2::new(0.0, 0.0), Point2::new(0.25, 1.0)),
        Rect::new(Point2::new(0.75, 0.0), Point2::new(1.0, 1.0)),
        // A corner cell.
        Rect::new(Point2::new(0.0, 0.0), Point2::new(0.3, 0.3)),
        // Degenerate: a zero-width segment along an edge …
        Rect::new(Point2::new(0.0, 0.0), Point2::new(0.0, 1.0)),
        // … and a zero-area rect exactly on an edge object.
        Rect::new(Point2::new(0.5, 0.0), Point2::new(0.5, 0.0)),
        // Off-centre strip touching both vertical edges.
        Rect::new(Point2::new(0.0, 0.45), Point2::new(1.0, 0.55)),
    ]
}

fn boundary_disks() -> Vec<RadiusQuery> {
    let mut disks = vec![
        // Centred on each corner, reaching far outside the domain.
        RadiusQuery {
            center: Point2::new(0.0, 0.0),
            radius: 0.45,
        },
        RadiusQuery {
            center: Point2::new(1.0, 1.0),
            radius: 0.45,
        },
        // Centred on edge objects.
        RadiusQuery {
            center: Point2::new(0.5, 0.0),
            radius: 0.3,
        },
        RadiusQuery {
            center: Point2::new(1.0, 0.5),
            radius: 0.3,
        },
        // Covering the whole domain.
        RadiusQuery {
            center: Point2::new(0.5, 0.5),
            radius: 1.0,
        },
        // Zero radius exactly on an object.
        RadiusQuery {
            center: Point2::new(0.25, 0.0),
            radius: 0.0,
        },
    ];
    // Tiny disks straddling each edge midpoint.
    for &(x, y) in &[(0.5, 0.0), (0.5, 1.0), (0.0, 0.5), (1.0, 0.5)] {
        disks.push(RadiusQuery {
            center: Point2::new(x, y),
            radius: 0.1,
        });
    }
    disks
}

#[test]
fn range_queries_at_the_domain_edge_match_the_oracle() {
    let (net, ids, mut oracle) = build();
    let mut scratch = RouteScratch::new();
    for (i, rect) in boundary_rects().into_iter().enumerate() {
        let from = ids[i % ids.len()];
        scratch.delta.clear();
        let report = range_query_in(&net, from, RangeQuery { rect }, &mut scratch)
            .unwrap_or_else(|e| panic!("rect {i} ({rect:?}): {e}"));
        let expected = brute_range(&net, &ids, rect);
        assert_eq!(
            report.matches, expected,
            "rect {i} ({rect:?}): flood missed/extra boundary objects"
        );
        assert_eq!(
            report.flood_messages,
            report.visited as u64 - 1,
            "rect {i}: flood accounting"
        );
        // The oracle agrees, via the API-level result shape.
        oracle
            .check_apply(
                &voronet_api::Op::Range {
                    from,
                    query: RangeQuery { rect },
                },
                &voronet_api::OpResult::Queried(report.clone().into()),
            )
            .unwrap_or_else(|e| panic!("rect {i}: {e}"));
    }
}

#[test]
fn radius_queries_at_the_domain_edge_match_the_oracle() {
    let (net, ids, mut oracle) = build();
    let mut scratch = RouteScratch::new();
    for (i, disk) in boundary_disks().into_iter().enumerate() {
        let from = ids[(i * 3) % ids.len()];
        scratch.delta.clear();
        let report = radius_query_in(&net, from, disk, &mut scratch)
            .unwrap_or_else(|e| panic!("disk {i} ({disk:?}): {e}"));
        let expected = brute_radius(&net, &ids, disk);
        assert_eq!(
            report.matches, expected,
            "disk {i} ({disk:?}): flood missed/extra boundary objects"
        );
        assert_eq!(
            report.flood_messages,
            report.visited as u64 - 1,
            "disk {i}: flood accounting"
        );
        oracle
            .check_apply(
                &voronet_api::Op::Radius { from, query: disk },
                &voronet_api::OpResult::Queried(report.clone().into()),
            )
            .unwrap_or_else(|e| panic!("disk {i}: {e}"));
    }
}

/// The `&self` `_in` forms and their `&mut` wrappers return identical
/// reports and identical traffic at the boundary.
#[test]
fn in_forms_match_their_mut_wrappers_at_the_boundary() {
    let (net, ids, _) = build();
    for rect in boundary_rects() {
        let mut wrapped = net.clone();
        let mut split = net.clone();
        let a = range_query(&mut wrapped, ids[0], RangeQuery { rect }).unwrap();
        let mut scratch = RouteScratch::new();
        let b = range_query_in(&split, ids[0], RangeQuery { rect }, &mut scratch).unwrap();
        split.apply_traffic(&scratch.delta);
        assert_eq!(a.matches, b.matches, "rect {rect:?}");
        assert_eq!(a.visited, b.visited, "rect {rect:?}");
        assert_eq!(a.flood_messages, b.flood_messages, "rect {rect:?}");
        assert_eq!(wrapped.traffic(), split.traffic(), "rect {rect:?}");
    }
    for disk in boundary_disks() {
        let mut wrapped = net.clone();
        let mut split = net.clone();
        let a = radius_query(&mut wrapped, ids[1], disk).unwrap();
        let mut scratch = RouteScratch::new();
        let b = radius_query_in(&split, ids[1], disk, &mut scratch).unwrap();
        split.apply_traffic(&scratch.delta);
        assert_eq!(a.matches, b.matches, "disk {disk:?}");
        assert_eq!(a.visited, b.visited, "disk {disk:?}");
        assert_eq!(a.flood_messages, b.flood_messages, "disk {disk:?}");
        assert_eq!(wrapped.traffic(), split.traffic(), "disk {disk:?}");
    }
}
