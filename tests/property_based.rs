//! Property-based tests on the geometric substrate and the overlay
//! invariants.
//!
//! Originally written against `proptest`; the build environment has no
//! crates.io access, so the same properties are exercised with hand-rolled
//! seeded case generation (48 cases per property, like the original
//! `ProptestConfig::with_cases(48)`).  Coordinates are drawn either from a
//! coarse 64×64 lattice — so that duplicate, collinear and co-circular
//! configurations appear frequently (the degenerate cases the exact
//! predicates must survive) — or as arbitrary floats in the unit square.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use voronet::prelude::*;
use voronet_core::VoroNetConfig;
use voronet_geom::hull::{convex_hull, delaunay_edges_bruteforce};
use voronet_geom::{orient2d, Orientation};

const CASES: u64 = 48;

fn lattice_points(rng: &mut StdRng, max_len: usize) -> Vec<Point2> {
    let len = rng.random_range(1..max_len);
    (0..len)
        .map(|_| {
            Point2::new(
                rng.random_range(0..64u32) as f64 / 64.0,
                rng.random_range(0..64u32) as f64 / 64.0,
            )
        })
        .collect()
}

fn float_points(rng: &mut StdRng, max_len: usize) -> Vec<Point2> {
    let len = rng.random_range(1..max_len);
    (0..len)
        .map(|_| Point2::new(rng.random::<f64>(), rng.random::<f64>()))
        .collect()
}

/// The incremental triangulation stays structurally valid and Delaunay for
/// arbitrary (including degenerate) insertion sequences.
#[test]
fn triangulation_valid_after_lattice_insertions() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7A11 + case);
        let pts = lattice_points(&mut rng, 60);
        let mut tri = Triangulation::unit_square();
        let mut inserted = 0usize;
        for p in &pts {
            match tri.insert(*p) {
                Ok(_) => inserted += 1,
                Err(voronet_geom::InsertError::Duplicate(_)) => {}
                Err(e) => panic!("case {case}: unexpected error {e}"),
            }
        }
        assert_eq!(tri.len(), inserted, "case {case}");
        assert!(tri.euler_check(), "case {case}");
        assert!(tri.validate().is_ok(), "case {case}: {:?}", tri.validate());
    }
}

/// Inserting then removing every point returns the triangulation to its
/// empty state, whatever the order.
#[test]
fn triangulation_insert_remove_roundtrip() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xB0B + case);
        let pts = float_points(&mut rng, 40);
        let mut tri = Triangulation::unit_square();
        let mut ids = Vec::new();
        for p in &pts {
            if let Ok(v) = tri.insert(*p) {
                ids.push(v);
            }
        }
        for &v in ids.iter().rev() {
            assert!(tri.remove(v).is_ok(), "case {case}");
        }
        assert!(tri.is_empty(), "case {case}");
        assert_eq!(tri.num_triangles(), 2, "case {case}");
        assert!(tri.validate().is_ok(), "case {case}");
    }
}

/// The greedy nearest-vertex walk agrees with a brute-force scan.
#[test]
fn nearest_vertex_matches_bruteforce() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x4EA3 + case);
        let pts = float_points(&mut rng, 40);
        let q = Point2::new(rng.random::<f64>(), rng.random::<f64>());
        let mut tri = Triangulation::unit_square();
        let mut ids = Vec::new();
        for p in &pts {
            if let Ok(v) = tri.insert(*p) {
                ids.push(v);
            }
        }
        if ids.is_empty() {
            continue;
        }
        let found = tri.nearest_vertex(q).unwrap();
        let best = ids
            .iter()
            .map(|&v| tri.point(v).distance2(q))
            .fold(f64::INFINITY, f64::min);
        assert!(
            (tri.point(found).distance2(q) - best).abs() < 1e-15,
            "case {case}"
        );
    }
}

/// Interior Delaunay edges found incrementally match the brute-force
/// empty-circle oracle (hull edges may differ because of the sentinel box;
/// see DESIGN.md).
#[test]
fn incremental_interior_edges_are_delaunay() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xDE1A + case);
        let pts = float_points(&mut rng, 26);
        if pts.len() < 4 {
            continue;
        }
        let mut dedup = pts.clone();
        dedup.sort_by(|a, b| a.lex_cmp(b));
        dedup.dedup_by(|a, b| a.x == b.x && a.y == b.y);
        if dedup.len() < 4 {
            continue;
        }

        let hull = convex_hull(&dedup);
        let is_hull = |p: Point2| hull.iter().any(|&h| h.x == p.x && h.y == p.y);

        let mut tri = Triangulation::unit_square();
        let ids: Vec<_> = dedup.iter().map(|&p| tri.insert(p).unwrap()).collect();
        let brute = delaunay_edges_bruteforce(&dedup);
        for (i, j) in brute {
            if is_hull(dedup[i]) || is_hull(dedup[j]) {
                continue;
            }
            assert!(
                tri.are_neighbors(ids[i], ids[j]),
                "case {case}: missing interior Delaunay edge between {} and {}",
                dedup[i],
                dedup[j]
            );
        }
    }
}

/// Convex hull output is convex and contains every input point.
#[test]
fn convex_hull_is_convex_superset() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0DE + case);
        let pts = float_points(&mut rng, 50);
        let hull = convex_hull(&pts);
        if hull.len() < 3 {
            continue;
        }
        let n = hull.len();
        for i in 0..n {
            let a = hull[i];
            let b = hull[(i + 1) % n];
            assert_eq!(
                orient2d(a, b, hull[(i + 2) % n]),
                Orientation::Positive,
                "case {case}"
            );
            for &p in &pts {
                assert!(orient2d(a, b, p) != Orientation::Negative, "case {case}");
            }
        }
    }
}

/// Overlay invariants (close neighbours exact, long links owned, back-links
/// mirrored) hold after an arbitrary batch of insertions followed by a
/// prefix of removals.
#[test]
fn overlay_invariants_random_build_and_partial_teardown() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x1EA5 + case);
        let pts = float_points(&mut rng, 30);
        let remove_count = rng.random_range(0..20usize);
        let cfg = VoroNetConfig::new(40).with_long_links(2).with_seed(99);
        let mut net = VoroNet::new(cfg);
        let mut ids = Vec::new();
        for p in &pts {
            if let Ok(r) = net.insert(*p) {
                ids.push(r.id);
            }
        }
        for &id in ids.iter().take(remove_count.min(ids.len())) {
            assert!(net.remove(id).is_ok(), "case {case}");
        }
        assert!(
            net.check_invariants(true).is_ok(),
            "case {case}: {:?}",
            net.check_invariants(true)
        );
        assert!(net.triangulation().validate().is_ok(), "case {case}");
    }
}

/// Greedy routing always terminates at the owner of the target region.
#[test]
fn greedy_routing_terminates_at_owner() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x60A1 + case);
        let pts = float_points(&mut rng, 30);
        let q = Point2::new(rng.random::<f64>(), rng.random::<f64>());
        let cfg = VoroNetConfig::new(40).with_seed(5);
        let mut net = VoroNet::new(cfg);
        let mut ids = Vec::new();
        for p in &pts {
            if let Ok(r) = net.insert(*p) {
                ids.push(r.id);
            }
        }
        if ids.len() < 2 {
            continue;
        }
        let expected = net.owner_of(q).unwrap();
        let got = net.route_to_point(ids[0], q).unwrap();
        assert_eq!(got.owner, expected, "case {case}");
        assert_eq!(got.path.len() as u32, got.hops + 1, "case {case}");
    }
}
