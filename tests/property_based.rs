//! Property-based tests (proptest) on the geometric substrate and the
//! overlay invariants.

use proptest::collection::vec;
use proptest::prelude::*;
use voronet::prelude::*;
use voronet_core::VoroNetConfig;
use voronet_geom::hull::{convex_hull, delaunay_edges_bruteforce};
use voronet_geom::{orient2d, Orientation};

/// Strategy: coordinates on a coarse lattice, so that duplicate, collinear
/// and co-circular configurations are generated frequently (the degenerate
/// cases the exact predicates must survive).
fn lattice_points(max_len: usize) -> impl Strategy<Value = Vec<Point2>> {
    vec((0u32..64, 0u32..64), 1..max_len).prop_map(|pts| {
        pts.into_iter()
            .map(|(x, y)| Point2::new(x as f64 / 64.0, y as f64 / 64.0))
            .collect()
    })
}

/// Strategy: arbitrary f64 points in the unit square.
fn float_points(max_len: usize) -> impl Strategy<Value = Vec<Point2>> {
    vec((0.0f64..1.0, 0.0f64..1.0), 1..max_len)
        .prop_map(|pts| pts.into_iter().map(|(x, y)| Point2::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The incremental triangulation stays structurally valid and Delaunay
    /// for arbitrary (including degenerate) insertion sequences.
    #[test]
    fn triangulation_valid_after_lattice_insertions(pts in lattice_points(60)) {
        let mut tri = Triangulation::unit_square();
        let mut inserted = 0usize;
        for p in &pts {
            match tri.insert(*p) {
                Ok(_) => inserted += 1,
                Err(voronet_geom::InsertError::Duplicate(_)) => {}
                Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e}"))),
            }
        }
        prop_assert_eq!(tri.len(), inserted);
        prop_assert!(tri.euler_check());
        prop_assert!(tri.validate().is_ok(), "{:?}", tri.validate());
    }

    /// Inserting then removing every point returns the triangulation to its
    /// empty state, whatever the order.
    #[test]
    fn triangulation_insert_remove_roundtrip(pts in float_points(40)) {
        let mut tri = Triangulation::unit_square();
        let mut ids = Vec::new();
        for p in &pts {
            if let Ok(v) = tri.insert(*p) {
                ids.push(v);
            }
        }
        // Remove in reverse insertion order.
        for &v in ids.iter().rev() {
            prop_assert!(tri.remove(v).is_ok());
        }
        prop_assert!(tri.is_empty());
        prop_assert_eq!(tri.num_triangles(), 2);
        prop_assert!(tri.validate().is_ok());
    }

    /// The greedy nearest-vertex walk agrees with a brute-force scan.
    #[test]
    fn nearest_vertex_matches_bruteforce(pts in float_points(40), qx in 0.0f64..1.0, qy in 0.0f64..1.0) {
        let mut tri = Triangulation::unit_square();
        let mut ids = Vec::new();
        for p in &pts {
            if let Ok(v) = tri.insert(*p) {
                ids.push(v);
            }
        }
        prop_assume!(!ids.is_empty());
        let q = Point2::new(qx, qy);
        let found = tri.nearest_vertex(q).unwrap();
        let best = ids
            .iter()
            .map(|&v| tri.point(v).distance2(q))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((tri.point(found).distance2(q) - best).abs() < 1e-15);
    }

    /// Interior Delaunay edges found incrementally match the brute-force
    /// empty-circle oracle (hull edges may differ because of the sentinel
    /// box; see DESIGN.md).
    #[test]
    fn incremental_interior_edges_are_delaunay(pts in float_points(26)) {
        prop_assume!(pts.len() >= 4);
        let mut dedup = pts.clone();
        dedup.sort_by(|a, b| a.lex_cmp(b));
        dedup.dedup_by(|a, b| a.x == b.x && a.y == b.y);
        prop_assume!(dedup.len() >= 4);

        let hull = convex_hull(&dedup);
        let is_hull = |p: Point2| hull.iter().any(|&h| h.x == p.x && h.y == p.y);

        let mut tri = Triangulation::unit_square();
        let ids: Vec<_> = dedup.iter().map(|&p| tri.insert(p).unwrap()).collect();
        let brute = delaunay_edges_bruteforce(&dedup);
        for (i, j) in brute {
            if is_hull(dedup[i]) || is_hull(dedup[j]) {
                continue;
            }
            prop_assert!(
                tri.are_neighbors(ids[i], ids[j]),
                "missing interior Delaunay edge between {} and {}",
                dedup[i],
                dedup[j]
            );
        }
    }

    /// Convex hull output is convex and contains every input point.
    #[test]
    fn convex_hull_is_convex_superset(pts in float_points(50)) {
        let hull = convex_hull(&pts);
        prop_assume!(hull.len() >= 3);
        let n = hull.len();
        for i in 0..n {
            let a = hull[i];
            let b = hull[(i + 1) % n];
            prop_assert_eq!(orient2d(a, b, hull[(i + 2) % n]), Orientation::Positive);
            for &p in &pts {
                prop_assert!(orient2d(a, b, p) != Orientation::Negative);
            }
        }
    }

    /// Overlay invariants (close neighbours exact, long links owned,
    /// back-links mirrored) hold after an arbitrary batch of insertions
    /// followed by a prefix of removals.
    #[test]
    fn overlay_invariants_random_build_and_partial_teardown(
        pts in float_points(30),
        remove_count in 0usize..20,
    ) {
        let cfg = VoroNetConfig::new(40).with_long_links(2).with_seed(99);
        let mut net = VoroNet::new(cfg);
        let mut ids = Vec::new();
        for p in &pts {
            if let Ok(r) = net.insert(*p) {
                ids.push(r.id);
            }
        }
        for &id in ids.iter().take(remove_count.min(ids.len())) {
            prop_assert!(net.remove(id).is_ok());
        }
        prop_assert!(net.check_invariants(true).is_ok(), "{:?}", net.check_invariants(true));
        prop_assert!(net.triangulation().validate().is_ok());
    }

    /// Greedy routing always terminates at the owner of the target region.
    #[test]
    fn greedy_routing_terminates_at_owner(
        pts in float_points(30),
        qx in 0.0f64..1.0,
        qy in 0.0f64..1.0,
    ) {
        let cfg = VoroNetConfig::new(40).with_seed(5);
        let mut net = VoroNet::new(cfg);
        let mut ids = Vec::new();
        for p in &pts {
            if let Ok(r) = net.insert(*p) {
                ids.push(r.id);
            }
        }
        prop_assume!(ids.len() >= 2);
        let q = Point2::new(qx, qy);
        let expected = net.owner_of(q).unwrap();
        let got = net.route_to_point(ids[0], q).unwrap();
        prop_assert_eq!(got.owner, expected);
        prop_assert_eq!(got.path.len() as u32, got.hops + 1);
    }
}
