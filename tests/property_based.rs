//! Property-based tests on the geometric substrate and the overlay
//! invariants.
//!
//! Originally written against `proptest`, then as hand-rolled seeded
//! loops; now driven by the testkit's property harness
//! ([`voronet_testkit::check_cases`]), which keeps the seeded generation
//! (48 cases per property, like the original
//! `ProptestConfig::with_cases(48)`) and adds what the ad-hoc loops never
//! had: on failure the generated input is **shrunk** to a minimal witness
//! and the panic message carries the exact seed, case number and shrunk
//! input.  Coordinates are drawn either from a coarse 64×64 lattice — so
//! that duplicate, collinear and co-circular configurations appear
//! frequently (the degenerate cases the exact predicates must survive) —
//! or as arbitrary floats in the unit square.

use rand::rngs::StdRng;
use rand::RngExt;
use voronet::prelude::*;
use voronet_core::VoroNetConfig;
use voronet_geom::hull::{convex_hull, delaunay_edges_bruteforce};
use voronet_geom::{orient2d, Orientation};
use voronet_testkit::{check_cases, tk_ensure, tk_ensure_eq};

const CASES: u64 = 48;

fn lattice_points(rng: &mut StdRng, max_len: usize) -> Vec<Point2> {
    let len = rng.random_range(1..max_len);
    (0..len)
        .map(|_| {
            Point2::new(
                rng.random_range(0..64u32) as f64 / 64.0,
                rng.random_range(0..64u32) as f64 / 64.0,
            )
        })
        .collect()
}

fn float_points(rng: &mut StdRng, max_len: usize) -> Vec<Point2> {
    let len = rng.random_range(1..max_len);
    (0..len)
        .map(|_| Point2::new(rng.random::<f64>(), rng.random::<f64>()))
        .collect()
}

/// The incremental triangulation stays structurally valid and Delaunay for
/// arbitrary (including degenerate) insertion sequences.
#[test]
fn triangulation_valid_after_lattice_insertions() {
    check_cases(
        "triangulation-valid-after-lattice-insertions",
        CASES,
        0x7A11,
        |rng| lattice_points(rng, 60),
        |pts| {
            let mut tri = Triangulation::unit_square();
            let mut inserted = 0usize;
            for p in pts {
                match tri.insert(*p) {
                    Ok(_) => inserted += 1,
                    Err(voronet_geom::InsertError::Duplicate(_)) => {}
                    Err(e) => return Err(format!("unexpected error {e} inserting {p}")),
                }
            }
            tk_ensure_eq!(tri.len(), inserted, "triangulation size");
            tk_ensure!(tri.euler_check(), "Euler characteristic violated");
            tk_ensure!(
                tri.validate().is_ok(),
                "triangulation invalid: {:?}",
                tri.validate()
            );
            Ok(())
        },
    );
}

/// Inserting then removing every point returns the triangulation to its
/// empty state, whatever the order.
#[test]
fn triangulation_insert_remove_roundtrip() {
    check_cases(
        "triangulation-insert-remove-roundtrip",
        CASES,
        0xB0B,
        |rng| float_points(rng, 40),
        |pts| {
            let mut tri = Triangulation::unit_square();
            let mut ids = Vec::new();
            for p in pts {
                if let Ok(v) = tri.insert(*p) {
                    ids.push(v);
                }
            }
            for &v in ids.iter().rev() {
                tk_ensure!(tri.remove(v).is_ok(), "removal of {v:?} failed");
            }
            tk_ensure!(tri.is_empty(), "triangulation not empty after teardown");
            tk_ensure_eq!(tri.num_triangles(), 2, "sentinel triangle count");
            tk_ensure!(tri.validate().is_ok(), "invalid after teardown");
            Ok(())
        },
    );
}

/// The greedy nearest-vertex walk agrees with a brute-force scan.
#[test]
fn nearest_vertex_matches_bruteforce() {
    check_cases(
        "nearest-vertex-matches-bruteforce",
        CASES,
        0x4EA3,
        |rng| {
            let pts = float_points(rng, 40);
            let q = Point2::new(rng.random::<f64>(), rng.random::<f64>());
            (pts, q)
        },
        |(pts, q)| {
            let mut tri = Triangulation::unit_square();
            let mut ids = Vec::new();
            for p in pts {
                if let Ok(v) = tri.insert(*p) {
                    ids.push(v);
                }
            }
            if ids.is_empty() {
                return Ok(());
            }
            let found = tri.nearest_vertex(*q).expect("non-empty");
            let best = ids
                .iter()
                .map(|&v| tri.point(v).distance2(*q))
                .fold(f64::INFINITY, f64::min);
            tk_ensure!(
                (tri.point(found).distance2(*q) - best).abs() < 1e-15,
                "nearest_vertex found d²={} but brute force found d²={best}",
                tri.point(found).distance2(*q)
            );
            Ok(())
        },
    );
}

/// Interior Delaunay edges found incrementally match the brute-force
/// empty-circle oracle (hull edges may differ because of the sentinel box;
/// see DESIGN.md).
#[test]
fn incremental_interior_edges_are_delaunay() {
    check_cases(
        "incremental-interior-edges-are-delaunay",
        CASES,
        0xDE1A,
        |rng| float_points(rng, 26),
        |pts| {
            if pts.len() < 4 {
                return Ok(());
            }
            let mut dedup = pts.clone();
            dedup.sort_by(|a, b| a.lex_cmp(b));
            dedup.dedup_by(|a, b| a.x == b.x && a.y == b.y);
            if dedup.len() < 4 {
                return Ok(());
            }

            let hull = convex_hull(&dedup);
            let is_hull = |p: Point2| hull.iter().any(|&h| h.x == p.x && h.y == p.y);

            let mut tri = Triangulation::unit_square();
            let ids: Vec<_> = dedup
                .iter()
                .map(|&p| tri.insert(p).expect("deduplicated"))
                .collect();
            let brute = delaunay_edges_bruteforce(&dedup);
            for (i, j) in brute {
                if is_hull(dedup[i]) || is_hull(dedup[j]) {
                    continue;
                }
                tk_ensure!(
                    tri.are_neighbors(ids[i], ids[j]),
                    "missing interior Delaunay edge between {} and {}",
                    dedup[i],
                    dedup[j]
                );
            }
            Ok(())
        },
    );
}

/// Convex hull output is convex and contains every input point.
#[test]
fn convex_hull_is_convex_superset() {
    check_cases(
        "convex-hull-is-convex-superset",
        CASES,
        0xC0DE,
        |rng| float_points(rng, 50),
        |pts| {
            let hull = convex_hull(pts);
            if hull.len() < 3 {
                return Ok(());
            }
            let n = hull.len();
            for i in 0..n {
                let a = hull[i];
                let b = hull[(i + 1) % n];
                tk_ensure_eq!(
                    orient2d(a, b, hull[(i + 2) % n]),
                    Orientation::Positive,
                    "hull turn at vertex {i}"
                );
                for &p in pts {
                    tk_ensure!(
                        orient2d(a, b, p) != Orientation::Negative,
                        "point {p} lies outside hull edge {a} → {b}"
                    );
                }
            }
            Ok(())
        },
    );
}

/// Overlay invariants (close neighbours exact, long links owned, back-links
/// mirrored) hold after an arbitrary batch of insertions followed by a
/// prefix of removals.
#[test]
fn overlay_invariants_random_build_and_partial_teardown() {
    check_cases(
        "overlay-invariants-random-build-and-partial-teardown",
        CASES,
        0x1EA5,
        |rng| {
            let pts = float_points(rng, 30);
            let remove_count = rng.random_range(0..20usize);
            (pts, remove_count)
        },
        |(pts, remove_count)| {
            let cfg = VoroNetConfig::new(40).with_long_links(2).with_seed(99);
            let mut net = VoroNet::new(cfg);
            let mut ids = Vec::new();
            for p in pts {
                if let Ok(r) = net.insert(*p) {
                    ids.push(r.id);
                }
            }
            for &id in ids.iter().take((*remove_count).min(ids.len())) {
                tk_ensure!(net.remove(id).is_ok(), "removal of {id} failed");
            }
            tk_ensure!(
                net.check_invariants(true).is_ok(),
                "invariants violated: {:?}",
                net.check_invariants(true)
            );
            tk_ensure!(
                net.triangulation().validate().is_ok(),
                "triangulation invalid after teardown"
            );
            Ok(())
        },
    );
}

/// Greedy routing always terminates at the owner of the target region.
#[test]
fn greedy_routing_terminates_at_owner() {
    check_cases(
        "greedy-routing-terminates-at-owner",
        CASES,
        0x60A1,
        |rng| {
            let pts = float_points(rng, 30);
            let q = Point2::new(rng.random::<f64>(), rng.random::<f64>());
            (pts, q)
        },
        |(pts, q)| {
            let cfg = VoroNetConfig::new(40).with_seed(5);
            let mut net = VoroNet::new(cfg);
            let mut ids = Vec::new();
            for p in pts {
                if let Ok(r) = net.insert(*p) {
                    ids.push(r.id);
                }
            }
            if ids.len() < 2 {
                return Ok(());
            }
            let expected = net.owner_of(*q).expect("non-empty");
            let got = net.route_to_point(ids[0], *q).expect("route succeeds");
            tk_ensure_eq!(got.owner, expected, "owner of {q}");
            tk_ensure_eq!(got.path.len() as u32, got.hops + 1, "path length vs hops");
            Ok(())
        },
    );
}
