//! Integration tests of the asynchronous per-node runtime: the acceptance
//! scenarios of the runtime subsystem.
//!
//! * a ≥ 1,000-node scripted scenario with interleaved joins, departures,
//!   routes and area queries under a lossy, latency-skewed network runs
//!   deterministically (two runs with the same seed produce identical
//!   reports, `TrafficStats` and `RouteStats` included);
//! * on a loss-free network, the message-driven route for a sampled pair
//!   set reaches the same owner as the synchronous
//!   [`VoroNet::route_between`] fast path.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use voronet::prelude::*;
use voronet_core::runtime::{run_scenario, AsyncOverlay, RoutingMode};
use voronet_core::VoroNetConfig;
use voronet_sim::{LatencyModel, NetworkModel, PartitionWindow, Scenario, ScenarioOp};
use voronet_workloads::Distribution;

fn uniform_points(n: usize, seed: u64) -> Vec<Point2> {
    PointGenerator::new(Distribution::Uniform, seed).take_points(n)
}

/// The acceptance scenario: 1,000 warmup objects plus 400 scripted operations
/// (joins/leaves/routes/area queries/pings), so well over 1,000 distinct
/// nodes participate, under heavy-tailed latency, 10% iid loss and a
/// partition window.
fn big_churn_scenario(seed: u64) -> Scenario {
    let mut pg = PointGenerator::new(Distribution::Uniform, seed ^ 0xF00D);
    let mut qg = QueryGenerator::new(seed ^ 0xBEEF);
    let area_rects: Vec<_> = (0..20).map(|_| qg.range_query(0.15).rect).collect();
    Scenario::builder("churn-1k-lossy", seed)
        .warmup(uniform_points(1_000, seed ^ 0xCAFE))
        .churn(0, 2_000, 360, 0.45, 0.15, move || pg.next_point())
        .every(100, 80, 20, |i| ScenarioOp::AreaQuery {
            rect: area_rects[i % area_rects.len()],
        })
        .every(50, 95, 20, |_| ScenarioOp::Ping)
        .build()
}

fn lossy_network(seed: u64) -> NetworkModel {
    NetworkModel::new(
        seed,
        LatencyModel::Skewed {
            min: 1,
            max: 60,
            alpha: 1.2,
        },
    )
    .with_loss(0.1)
    .with_partition(PartitionWindow {
        start: 600,
        end: 900,
        groups: 2,
    })
}

#[test]
fn thousand_node_lossy_scenario_is_deterministic() {
    let run = |seed: u64| {
        let cfg = VoroNetConfig::new(2_000).with_seed(seed);
        run_scenario(
            cfg,
            &big_churn_scenario(seed),
            lossy_network(seed),
            RoutingMode::Greedy,
        )
    };
    let a = run(2006);
    let b = run(2006);
    assert_eq!(a, b, "same seed must reproduce the identical report");
    assert_eq!(a.traffic, b.traffic);
    assert_eq!(a.routes, b.routes);

    // The scenario actually exercised everything it scripted.
    assert!(a.counters.joins_requested > 100, "{:?}", a.counters);
    assert!(a.counters.joins_completed > 20, "{:?}", a.counters);
    assert!(a.counters.leaves > 20, "{:?}", a.counters);
    assert!(a.counters.routes_completed > 30, "{:?}", a.counters);
    assert!(a.counters.area_queries_completed > 0, "{:?}", a.counters);
    assert!(a.delivery.dropped_loss > 0, "{:?}", a.delivery);
    assert!(a.delivery.dropped_partition > 0, "{:?}", a.delivery);
    assert!(
        a.population + a.counters.leaves as usize > 1_000,
        "at least 1,000 nodes must have participated (population {} + {} leaves)",
        a.population,
        a.counters.leaves
    );

    // A different seed produces a genuinely different execution.
    let c = run(2007);
    assert_ne!(a.traffic, c.traffic);
}

#[test]
fn loss_free_routes_agree_with_the_synchronous_fast_path() {
    let points = uniform_points(500, 77);
    let cfg = VoroNetConfig::new(1_000).with_seed(41);

    let mut sync_net = VoroNet::new(cfg);
    for &p in &points {
        let _ = sync_net.insert(p);
    }

    let mut overlay = AsyncOverlay::new(cfg, NetworkModel::ideal(), 41);
    let ids = overlay.warmup(&points);
    assert_eq!(overlay.population(), sync_net.len());

    let mut rng = StdRng::seed_from_u64(4242);
    let mut measured = 0;
    while measured < 80 {
        let a = ids[rng.random_range(0..ids.len())];
        let b = ids[rng.random_range(0..ids.len())];
        if a == b {
            continue;
        }
        measured += 1;
        let (owner, hops) = overlay
            .measure_route(a, b)
            .expect("routes cannot be lost on a loss-free network");
        let sync = sync_net.route_between(a, b).unwrap();
        assert_eq!(
            owner, sync.owner,
            "trial {measured} (pair seed 4242): message-driven owner must match for {a} → {b}"
        );
        assert_eq!(
            owner, b,
            "trial {measured} (pair seed 4242): routes towards an object end at that object"
        );
        assert_eq!(
            hops, sync.hops,
            "trial {measured} (pair seed 4242): fresh local views take the same greedy steps \
             for {a} → {b}"
        );
    }
}

#[test]
fn loss_free_churn_keeps_replicas_consistent() {
    // After a loss-free churn scenario quiesces, every surviving replica's
    // view matches the authoritative overlay exactly: the NeighborUpdate
    // fan-out reaches everyone whose view a join or leave touched.
    let cfg = VoroNetConfig::new(500).with_seed(43);
    let mut pg = PointGenerator::new(Distribution::Uniform, 87);
    let scenario = Scenario::builder("loss-free-churn", 43)
        .warmup(uniform_points(200, 85))
        .churn(0, 500, 150, 0.4, 0.2, move || pg.next_point())
        .build();
    let mut overlay = AsyncOverlay::new(cfg, NetworkModel::ideal(), scenario.seed);
    overlay.warmup(&scenario.warmup);
    for &(t, op) in scenario.events() {
        overlay.schedule_op(t, op);
    }
    overlay.run_to_quiescence();

    let report_counters = overlay.counters();
    assert!(report_counters.joins_completed > 0, "{report_counters:?}");
    assert!(report_counters.leaves > 0, "{report_counters:?}");
    assert_eq!(overlay.delivery_stats().dropped_loss, 0);

    for id in overlay.net().ids().collect::<Vec<_>>() {
        let fresh = overlay.net().view(id).unwrap();
        let replica = overlay.replica_view(id).expect("live replica exists");
        assert_eq!(
            replica.voronoi_neighbours, fresh.voronoi_neighbours,
            "stale Voronoi view at {id} after quiescence"
        );
        assert_eq!(
            replica.close_neighbours, fresh.close_neighbours,
            "stale close-neighbour view at {id}"
        );
        assert_eq!(
            replica.routing_neighbours(),
            fresh.routing_neighbours(),
            "stale routing view at {id}"
        );
    }
}
