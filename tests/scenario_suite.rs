//! Properties of the heavy-traffic scenario suite (`voronet_workloads::scenario`).
//!
//! The scenario generators script production-shaped pathologies as plain
//! op streams; these tests replay them against the live overlay and pin
//! the behaviour the bench suite relies on:
//!
//! - a flash crowd into one Voronoi cell drives the population past the
//!   provisioned `N_max` and triggers exactly the adaptation rounds the
//!   [`AdaptationPolicy`] predicts, with overlay invariants intact after
//!   the burst;
//! - every scripted route still terminates at its target, and greedy
//!   point location agrees with the O(n²) nearest-scan oracle even while
//!   the crowd is packing one cell.

use rand::RngExt;
use voronet_core::dynamic::{adapt_nmax, needs_adaptation, AdaptationPolicy};
use voronet_core::{RouteScratch, VoroNet, VoroNetConfig};
use voronet_geom::Point2;
use voronet_testkit::{check_cases, tk_ensure, tk_ensure_eq};
use voronet_workloads::{Scenario, ScenarioKind, ScenarioSpec, WorkloadOp};

/// O(n) nearest-object scan — the oracle the greedy walk must agree
/// with (scanning per query makes the whole check the O(n²) oracle).
fn brute_force_owner(net: &VoroNet, target: Point2) -> Option<u64> {
    net.ids()
        .map(|id| (net.coords(id).expect("live").distance2(target), id.0))
        .min_by(|a, b| a.partial_cmp(b).expect("finite distances"))
        .map(|(_, id)| id)
}

/// A flash crowd packed into one cell must (a) trigger exactly the
/// adaptation rounds the policy predicts as the population crosses
/// `N_max`, (b) keep every scripted route exact, and (c) keep greedy
/// point location in agreement with the brute-force oracle inside and
/// around the crowded cell.
#[test]
fn flash_crowd_triggers_adaptation_and_keeps_routes_exact() {
    check_cases(
        "flash-crowd-triggers-adaptation",
        24,
        0xF1A5,
        |rng| {
            let seed = rng.random::<u64>();
            let population = rng.random_range(24..64usize);
            let ops = rng.random_range(48..96usize);
            (seed, population, ops)
        },
        |&(seed, population, ops)| {
            let scenario = Scenario::build(&ScenarioSpec::new(
                ScenarioKind::FlashCrowd,
                seed,
                population,
                ops,
            ));
            let hot = scenario.hot_region.expect("flash crowd has a hot cell");

            // Provision for the warm-up exactly: the crowd's arrivals are
            // what pushes the population past N_max.
            let nmax0 = scenario.setup.len();
            let policy = AdaptationPolicy::default();
            let mut net = VoroNet::new(VoroNetConfig::new(nmax0).with_seed(seed));
            for &p in &scenario.setup {
                if net.insert(p).is_err() {
                    return Err("warm-up insert rejected".into());
                }
            }

            let mut scratch = RouteScratch::default();
            let mut adaptations = 0usize;
            let mut crowd = 0usize;
            for (i, op) in scenario.phases[0].ops.iter().enumerate() {
                match *op {
                    WorkloadOp::Insert { position } => {
                        tk_ensure!(hot.contains(position), "arrival outside the cell");
                        tk_ensure!(
                            net.insert(position).is_ok(),
                            "crowd insert {i} rejected at {position}"
                        );
                        crowd += 1;
                        if needs_adaptation(&net, &policy) {
                            let report = adapt_nmax(&mut net, &policy)
                                .map_err(|e| format!("adaptation failed: {e}"))?
                                .ok_or("needs_adaptation promised a round")?;
                            tk_ensure!(
                                report.new_nmax > report.old_nmax,
                                "adaptation must grow N_max"
                            );
                            adaptations += 1;
                        }
                    }
                    WorkloadOp::Route { from, to } => {
                        let a = net.id_at(from).ok_or("scripted from out of range")?;
                        let b = net.id_at(to).ok_or("scripted to out of range")?;
                        let (owner, hops) = net
                            .route_between_in(a, b, &mut scratch)
                            .map_err(|e| format!("route {from}->{to} failed: {e}"))?;
                        tk_ensure_eq!(owner, b, "route must terminate at its target");
                        tk_ensure!(
                            (hops as usize) < net.len(),
                            "greedy route revisited objects"
                        );
                        // Every few routes, cross-check point location
                        // against the O(n) scan — inside the crowded cell,
                        // where the geometry is at its densest.
                        if i % 5 == 0 {
                            let target = Point2::new(
                                hot.min.x + (i as f64 * 0.137).fract() * hot.width(),
                                hot.min.y + (i as f64 * 0.311).fract() * hot.height(),
                            );
                            let (owner, _) = net
                                .route_to_point_in(a, target, &mut scratch)
                                .map_err(|e| format!("point route failed: {e}"))?;
                            tk_ensure_eq!(
                                Some(owner.0),
                                brute_force_owner(&net, target),
                                "greedy owner disagrees with the brute-force scan"
                            );
                        }
                    }
                    ref other => return Err(format!("unexpected op {other:?}")),
                }
            }

            // The crowd grew the population from nmax0 to nmax0 + crowd,
            // so the 1.0-threshold policy must have fired exactly once
            // (growth ×4 reprovisions far past the final population).
            tk_ensure!(crowd > 0, "no arrivals scripted");
            tk_ensure_eq!(adaptations, 1, "crowd of {crowd} over N_max {nmax0}");
            tk_ensure!(
                net.config().nmax >= net.len(),
                "adaptation must keep the overlay provisioned: N_max {} for {} objects",
                net.config().nmax,
                net.len()
            );
            net.check_invariants(true)
                .map_err(|e| format!("invariants broken after the crowd: {e}"))?;
            Ok(())
        },
    );
}

/// Mass churn replayed on the live overlay: every scripted removal hits
/// a live object, the region empties and refills, and routing stays
/// exact through both transitions.
#[test]
fn mass_churn_replay_keeps_the_overlay_consistent() {
    check_cases(
        "mass-churn-replay-consistent",
        16,
        0x3C44,
        |rng| (rng.random::<u64>(), rng.random_range(32..80usize)),
        |&(seed, population)| {
            let scenario = Scenario::build(&ScenarioSpec::new(
                ScenarioKind::MassChurn,
                seed,
                population,
                96,
            ));
            let mut net = VoroNet::new(VoroNetConfig::new(population * 2).with_seed(seed));
            for &p in &scenario.setup {
                if net.insert(p).is_err() {
                    return Err("warm-up insert rejected".into());
                }
            }
            let mut scratch = RouteScratch::default();
            for op in scenario.phases.iter().flat_map(|p| &p.ops) {
                match *op {
                    WorkloadOp::Insert { position } => {
                        tk_ensure!(net.insert(position).is_ok(), "rejoin insert rejected");
                    }
                    WorkloadOp::Remove { index } => {
                        let id = net.id_at(index).ok_or("scripted remove out of range")?;
                        tk_ensure!(net.remove(id).is_ok(), "scripted removal failed");
                    }
                    WorkloadOp::Route { from, to } => {
                        let a = net.id_at(from).ok_or("from out of range")?;
                        let b = net.id_at(to).ok_or("to out of range")?;
                        let (owner, _) = net
                            .route_between_in(a, b, &mut scratch)
                            .map_err(|e| format!("route failed mid-churn: {e}"))?;
                        tk_ensure_eq!(owner, b, "route must terminate at its target");
                    }
                    ref other => return Err(format!("unexpected op {other:?}")),
                }
            }
            tk_ensure_eq!(net.len(), scenario.setup.len(), "exodus must fully rejoin");
            net.check_invariants(true)
                .map_err(|e| format!("invariants broken after churn: {e}"))?;
            Ok(())
        },
    );
}
