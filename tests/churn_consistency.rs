//! Cross-crate churn test: the overlay, its triangulation and its long-link
//! bookkeeping stay mutually consistent under sustained joins and
//! departures, for every workload distribution.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use voronet::prelude::*;
use voronet_core::VoroNetConfig;

fn churn_with(dist: Distribution, seed: u64) {
    let cfg = VoroNetConfig::new(400).with_long_links(2).with_seed(seed);
    let mut net = VoroNet::new(cfg);
    let mut gen = PointGenerator::new(dist, seed ^ 0xF00D);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<ObjectId> = Vec::new();

    for step in 0..600 {
        if live.len() < 20 || rng.random::<f64>() < 0.62 {
            if let Ok(r) = net.insert(gen.next_point()) {
                live.push(r.id);
            }
        } else {
            let idx = rng.random_range(0..live.len());
            let id = live.swap_remove(idx);
            net.remove(id).unwrap_or_else(|e| {
                panic!(
                    "{} seed {seed} step {step}: removing {id}: {e}",
                    dist.label()
                )
            });
        }
        if step % 200 == 199 {
            net.check_invariants(true)
                .unwrap_or_else(|e| panic!("{} seed {seed} churn step {step}: {e}", dist.label()));
            net.triangulation()
                .validate()
                .unwrap_or_else(|e| panic!("{} seed {seed} churn step {step}: {e}", dist.label()));
        }
    }
    assert_eq!(
        net.len(),
        live.len(),
        "{} seed {seed}: population drifted from the live-id mirror",
        dist.label()
    );

    // After churn, every long link still points at the owner of its target
    // and routing still terminates at the right object.
    let ids: Vec<ObjectId> = net.ids().collect();
    for _ in 0..100 {
        let a = ids[rng.random_range(0..ids.len())];
        let b = ids[rng.random_range(0..ids.len())];
        if a == b {
            continue;
        }
        let report = net
            .route_between(a, b)
            .unwrap_or_else(|e| panic!("{} seed {seed}: route {a} → {b}: {e}", dist.label()));
        assert_eq!(
            report.owner,
            b,
            "{} seed {seed}: route {a} → {b} terminated elsewhere",
            dist.label()
        );
    }
}

#[test]
fn churn_uniform() {
    churn_with(Distribution::Uniform, 1);
}

#[test]
fn churn_heavy_skew() {
    churn_with(Distribution::PowerLaw { alpha: 5.0 }, 2);
}

#[test]
fn churn_clustered() {
    churn_with(
        Distribution::Clusters {
            clusters: 4,
            spread: 0.03,
        },
        3,
    );
}

#[test]
fn churn_gridlike_degenerate() {
    // Jittered grid: lots of near-co-circular configurations exercising the
    // exact-predicate fallbacks during both insertion and removal.
    churn_with(
        Distribution::Grid {
            side: 25,
            jitter: 0.2,
        },
        4,
    );
}

#[test]
fn overlay_can_be_emptied_and_refilled() {
    let cfg = VoroNetConfig::new(200).with_seed(9);
    let mut net = VoroNet::new(cfg);
    let mut gen = PointGenerator::new(Distribution::Uniform, 10);
    let mut ids = Vec::new();
    for _ in 0..150 {
        if let Ok(r) = net.insert(gen.next_point()) {
            ids.push(r.id);
        }
    }
    for id in ids.drain(..) {
        net.remove(id).unwrap();
    }
    assert!(net.is_empty());
    assert_eq!(net.owner_of(Point2::new(0.5, 0.5)), None);
    for _ in 0..150 {
        if let Ok(r) = net.insert(gen.next_point()) {
            ids.push(r.id);
        }
    }
    assert_eq!(net.len(), ids.len());
    net.check_invariants(true).unwrap();
}
