//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) slice of the `rand` API the workspace actually uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator, seeded from a
//!   `u64` through SplitMix64 exactly like `rand::rngs::SmallRng`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`RngExt`] — `random::<T>()` and `random_range(lo..hi)` sampling.
//!
//! Determinism is the only contract the workspace relies on: every simulation
//! seed must reproduce bit-for-bit.  Statistical quality is provided by
//! xoshiro256++, which passes BigCrush; nothing here is cryptographic.

#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Deterministic pseudo-random generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable uniformly over their "standard" domain (`[0, 1)` for
/// floats, the full range for integers, fair coin for `bool`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable uniformly (the argument of [`RngExt::random_range`]).
pub trait SampleRange {
    /// Element type produced by the range.
    type Output;
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Lemire's multiply-shift; the O(span/2^64) bias is far below
                // anything the statistical tests in this workspace resolve.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample an empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + draw as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample an empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn range_sampling_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.random_range(5..6u32);
            assert_eq!(v, 5);
            let w = rng.random_range(0..=3u64);
            assert!(w <= 3);
        }
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.random_range(3..3usize);
    }
}
