//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, and nothing in the
//! workspace actually serializes data — the `#[derive(Serialize,
//! Deserialize)]` attributes only mark value types as serializable for
//! downstream users.  This crate keeps those attributes compiling: the
//! derives (from the vendored no-op `serde_derive`) expand to nothing, and
//! the trait names exist as empty markers.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
