//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the small slice of the criterion API the workspace's benches
//! use (`benchmark_group`, `sample_size`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, the `criterion_group!`/
//! `criterion_main!` macros) with a straightforward timing loop: each
//! benchmark is calibrated to a minimum measurement window and reported as
//! mean time per iteration on stdout.  No statistics beyond the mean are
//! computed; the point is that `cargo bench` runs and produces comparable
//! numbers, not criterion's full analysis.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Identifier of one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combines a function label and a parameter into one display name.
    pub fn new<P: std::fmt::Display>(function_name: impl Into<String>, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handed to every benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it as many times as the calibration demands.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples (kept for API compatibility;
    /// this harness folds it into the measurement-window calibration).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark of the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, f: F) {
        let name = format!("{}/{}", self.name, id);
        run_benchmark(&name, self.sample_size, f);
    }

    /// Runs one parameterised benchmark of the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let name = format!("{}/{}", self.name, id);
        run_benchmark(&name, self.sample_size, |b| f(b, input));
    }

    /// Ends the group (stdout reporting needs no teardown).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        run_benchmark(name, 10, f);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    // Calibrate: grow the iteration count until one sample takes >= 5 ms,
    // then take `samples` samples and report the overall mean per iteration.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples.min(20) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters;
    }
    let per_iter = if total_iters == 0 {
        Duration::ZERO
    } else {
        total / total_iters as u32
    };
    println!("bench: {name:60} {per_iter:>12.2?}/iter ({total_iters} iters)");
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 25,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 25);
    }

    #[test]
    fn benchmark_id_formats_label_and_parameter() {
        let id = BenchmarkId::new("insert", 1000);
        assert_eq!(id.to_string(), "insert/1000");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
