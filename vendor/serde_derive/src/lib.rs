//! Offline no-op stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io.  Serialization is not on
//! any code path of the reproduction (the derives only decorate value types
//! so that downstream users *could* serialize them), so the derive macros
//! here accept the same syntax and expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
