//! # voronet
//!
//! Facade crate for the VoroNet reproduction — *VoroNet: A scalable object
//! network based on Voronoi tessellations* (Beaumont, Kermarrec, Marchal,
//! Rivière, IPDPS 2007).
//!
//! The workspace is organised as one crate per subsystem; this crate
//! re-exports them so applications can depend on a single name:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`geom`] | robust predicates, incremental Delaunay/Voronoi |
//! | [`stats`] | histograms, regressions, series export |
//! | [`workloads`] | object distributions, query generators, batched op scripts |
//! | [`sim`] | discrete-event scheduler, per-node async runtime, network models, traffic accounting |
//! | [`smallworld`] | Kleinberg grid baseline |
//! | [`core`] | the VoroNet overlay itself, plus its message-driven execution |
//! | [`api`] | the backend-agnostic [`Overlay`](api::Overlay) trait, batched ops, `OverlayBuilder`, unified errors |
//! | [`services`] | geo-scoped services over any overlay: region pub/sub and coordinate-keyed KV |
//! | [`net`] | the wire codec, pluggable transports (vnet/UDP/TCP) and the driver/host cluster behind `voronet-node` |
//! | `voronet-testkit` | differential oracle fuzzing of every engine, shrinking reproducers (dev-only, not re-exported) |
//!
//! Applications program against the [`api::Overlay`] trait and pick an
//! engine (synchronous fast path or the message-driven runtime) with the
//! [`api::OverlayBuilder`]:
//!
//! ```
//! use voronet::prelude::*;
//!
//! let mut net = OverlayBuilder::new(100).seed(1).build_sync();
//! let a = net.insert(Point2::new(0.2, 0.2)).unwrap().id;
//! let b = net.insert(Point2::new(0.9, 0.7)).unwrap().id;
//! assert_eq!(net.route_between(a, b).unwrap().owner, b);
//!
//! // The same program runs unchanged on the asynchronous engine:
//! let mut net: Box<dyn Overlay> = OverlayBuilder::new(100)
//!     .seed(1)
//!     .engine(EngineKind::Async)
//!     .build();
//! let a = net.insert(Point2::new(0.2, 0.2)).unwrap().id;
//! let b = net.insert(Point2::new(0.9, 0.7)).unwrap().id;
//! assert_eq!(net.route_between(a, b).unwrap().owner, b);
//! ```

#![warn(missing_docs)]

pub use voronet_api as api;
pub use voronet_core as core;
pub use voronet_geom as geom;
pub use voronet_net as net;
pub use voronet_services as services;
pub use voronet_sim as sim;
pub use voronet_smallworld as smallworld;
pub use voronet_stats as stats;
pub use voronet_workloads as workloads;

/// Commonly used items, re-exported for `use voronet::prelude::*`.
pub mod prelude {
    pub use voronet_api::{
        AsyncEngine, EngineKind, ErrorKind, Op, OpResult, Overlay, OverlayBuilder, ServiceOp,
        ServiceResult, SyncEngine, ViewMaintenance, VoronetError,
    };
    pub use voronet_core::{
        radius_query, range_query, FrozenView, JoinReport, LeaveReport, ObjectId, ObjectView,
        RouteReport, RouteScratch, SnapshotStats, ViewGenerations, ViewRefresh, VoroNet,
        VoroNetConfig,
    };
    pub use voronet_geom::{Point2, Rect, Triangulation};
    pub use voronet_services::{key_point, ServiceEngine};
    pub use voronet_stats::{IntHistogram, Series};
    pub use voronet_workloads::{
        Distribution, OpBatchGenerator, OpMix, PointGenerator, QueryGenerator,
    };
}
